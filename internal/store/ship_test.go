package store

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	tlx "tlevelindex"
	"tlevelindex/datagen"
)

// shipBytes prepares a stream and renders it to memory.
func shipBytes(t *testing.T, s *Store, from int64) []byte {
	t.Helper()
	sess, err := s.PrepareShip(from)
	if err != nil {
		t.Fatalf("PrepareShip(%d): %v", from, err)
	}
	var buf bytes.Buffer
	if _, err := sess.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return buf.Bytes()
}

// replayShip consumes a shipped stream the way a bootstrapping follower
// does: verify the header, load the snapshot, replay the tail with the
// acknowledged-id cross-check. onto is the receiver's existing state for
// tail-only streams (nil demands a full stream).
func replayShip(data []byte, onto *tlx.Index) (*tlx.Index, ShipHeader, error) {
	r := bytes.NewReader(data)
	hdr, err := ReadShipHeader(r)
	if err != nil {
		return nil, hdr, err
	}
	ix := onto
	if hdr.SnapBytes > 0 {
		snap := make([]byte, hdr.SnapBytes)
		if _, err := io.ReadFull(r, snap); err != nil {
			return nil, hdr, err
		}
		if ix, err = tlx.ReadIndexBytes(snap, false); err != nil {
			return nil, hdr, err
		}
	}
	if ix == nil {
		return nil, hdr, errors.New("tail-only stream with no receiver state")
	}
	for lsn := hdr.SnapLSN + 1; lsn <= hdr.TailLSN; lsn++ {
		rec, err := ReadShipRecord(r)
		if err != nil {
			return nil, hdr, err
		}
		if rec.LSN != lsn {
			return nil, hdr, errors.New("ship record out of sequence")
		}
		id, err := ix.Insert(rec.Attrs)
		if err != nil {
			return nil, hdr, err
		}
		if int64(id) != rec.ID {
			return nil, hdr, errors.New("ship replay diverged from acknowledged id")
		}
	}
	return ix, hdr, nil
}

// TestShipFullStream: a full bootstrap stream — snapshot plus tail — must
// reassemble, on the receiver, an index indistinguishable from the
// primary's.
func TestShipFullStream(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	inserts := testInserts()
	for _, opt := range inserts[:4] {
		if _, err := s.Insert(opt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// These records live only in the WAL tail beyond the snapshot.
	for _, opt := range inserts[4:] {
		if _, err := s.Insert(opt); err != nil {
			t.Fatal(err)
		}
	}

	got, hdr, err := replayShip(shipBytes(t, s, -1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.SnapBytes == 0 || hdr.SnapLSN == 0 {
		t.Fatalf("full stream header %+v carries no snapshot", hdr)
	}
	if want := s.Status().AppliedLSN; hdr.TailLSN != want {
		t.Errorf("stream tail LSN %d, primary applied %d", hdr.TailLSN, want)
	}
	assertSameAnswers(t, got, s.Index())
}

// TestShipTailOnly: a receiver that already holds state at some LSN gets
// just the records beyond it, and lands exactly at the primary's tail.
func TestShipTailOnly(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	inserts := testInserts()
	for _, opt := range inserts[:4] {
		if _, err := s.Insert(opt); err != nil {
			t.Fatal(err)
		}
	}
	// Bootstrap a receiver at the current LSN.
	mine, hdr, err := replayShip(shipBytes(t, s, -1), nil)
	if err != nil {
		t.Fatal(err)
	}
	at := hdr.TailLSN

	for _, opt := range inserts[4:] {
		if _, err := s.Insert(opt); err != nil {
			t.Fatal(err)
		}
	}
	got, hdr, err := replayShip(shipBytes(t, s, int64(at)), mine)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.SnapBytes != 0 || hdr.SnapLSN != at {
		t.Fatalf("tail stream header %+v, want snapLSN %d and no snapshot", hdr, at)
	}
	if want := s.Status().AppliedLSN; hdr.TailLSN != want {
		t.Errorf("stream tail LSN %d, primary applied %d", hdr.TailLSN, want)
	}
	assertSameAnswers(t, got, s.Index())

	// Caught up: the next tail request is empty but well-formed.
	empty, hdr, err := replayShip(shipBytes(t, s, int64(hdr.TailLSN)), got)
	if err != nil || hdr.SnapLSN != hdr.TailLSN {
		t.Fatalf("caught-up stream: %+v err=%v", hdr, err)
	}
	assertSameAnswers(t, empty, s.Index())
}

// TestShipFromBeyondApplied: a diverged receiver (claiming more history
// than the primary has) is a plain error, not a gap — re-bootstrapping
// would not help it.
func TestShipFromBeyondApplied(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	_, err := s.PrepareShip(99)
	if err == nil {
		t.Fatal("ship from beyond applied accepted")
	}
	if errors.Is(err, ErrShipGap) {
		t.Fatalf("diverged receiver reported as gap: %v", err)
	}
}

// TestShipGapAfterPrune: once snapshots have pruned the WAL past a
// receiver's position, the tail request must report ErrShipGap — the
// signal to fall back to a full bootstrap.
func TestShipGapAfterPrune(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	// Each snapshot rotates the WAL; pruning keeps two snapshots and the
	// segments at or beyond the older one, so enough rounds discard the
	// segment holding LSN 1.
	for _, opt := range testInserts() {
		if _, err := s.Insert(opt); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.PrepareShip(0); !errors.Is(err, ErrShipGap) {
		t.Fatalf("ship from pruned LSN 0: %v, want ErrShipGap", err)
	}
	// A full bootstrap still works — it starts from the newest snapshot.
	if got, _, err := replayShip(shipBytes(t, s, -1), nil); err != nil {
		t.Fatal(err)
	} else {
		assertSameAnswers(t, got, s.Index())
	}
}

// TestShipUnderConcurrentInserts streams while a writer inserts and
// snapshots rotate. Every stream must be self-consistent — parse clean,
// replay to exactly its advertised tail LSN — regardless of what the
// writer does meanwhile; the final stream must equal the final index.
func TestShipUnderConcurrentInserts(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{SnapshotRecords: 3})
	inserts := datagen.Generate(datagen.IND, 16, 2, 55)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, opt := range inserts {
			if _, err := s.Insert(opt); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		ix, _, err := replayShip(shipBytes(t, s, -1), nil)
		if err != nil {
			t.Fatalf("concurrent stream %d: %v", i, err)
		}
		// The replayed index must be servable, not just parseable.
		if _, err := ix.TopK([]float64{0.5, 0.5}, testTau); err != nil {
			t.Fatalf("concurrent stream %d replayed unusable index: %v", i, err)
		}
	}
	wg.Wait()
	got, hdr, err := replayShip(shipBytes(t, s, -1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := s.Status().AppliedLSN; hdr.TailLSN != want {
		t.Errorf("final stream tail %d, applied %d", hdr.TailLSN, want)
	}
	assertSameAnswers(t, got, s.Index())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShipStreamCorruptionDetected flips single bits across a valid
// stream and truncates it at every region boundary: the receiver pipeline
// must reject each mutation with a content error — the follower's
// re-fetch trigger — and never accept silently.
func TestShipStreamCorruptionDetected(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	for _, opt := range testInserts()[:3] {
		if _, err := s.Insert(opt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for _, opt := range testInserts()[3:6] {
		if _, err := s.Insert(opt); err != nil {
			t.Fatal(err)
		}
	}
	data := shipBytes(t, s, -1)
	if _, _, err := replayShip(data, nil); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}

	isContent := func(err error) bool {
		return errors.Is(err, ErrCorrupt) || errors.Is(err, tlx.ErrBadFormat)
	}
	// Single-bit flips sampled across header, snapshot body, and tail.
	for _, off := range []int{0, 9, 33, shipHeaderSize + 5, shipHeaderSize + 200, len(data) - 10, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x10
		if _, _, err := replayShip(mut, nil); !isContent(err) {
			t.Errorf("bit flip at %d: err=%v, want a content error", off, err)
		}
	}
	// Truncations: mid-header, mid-snapshot, mid-tail.
	for _, n := range []int{0, shipHeaderSize - 1, shipHeaderSize + 100, len(data) - 5} {
		if _, _, err := replayShip(data[:n], nil); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
}

// FuzzShipRead throws arbitrary bytes at the exact decoding pipeline a
// follower trusts with network data: header, snapshot load, record frames.
// It must never panic, and whatever parses must be internally consistent.
func FuzzShipRead(f *testing.F) {
	s, err := Open(Options{Dir: f.TempDir()}, builder(testData(20)))
	if err != nil {
		f.Fatal(err)
	}
	for _, opt := range testInserts()[:4] {
		if _, err := s.Insert(opt); err != nil {
			f.Fatal(err)
		}
	}
	sess, err := s.PrepareShip(-1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := sess.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	s.Close()
	blob := buf.Bytes()
	f.Add(blob)
	f.Add(blob[:shipHeaderSize])
	f.Add(blob[:len(blob)-3])
	flipped := append([]byte(nil), blob...)
	flipped[shipHeaderSize+17] ^= 0x04
	f.Add(flipped)
	f.Add([]byte(shipMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		hdr, err := ReadShipHeader(r)
		if err != nil {
			return
		}
		if hdr.TailLSN < hdr.SnapLSN || hdr.SnapBytes < 0 {
			t.Fatalf("accepted header violates its own invariants: %+v", hdr)
		}
		if hdr.SnapBytes > 0 {
			if hdr.SnapBytes > int64(r.Len()) {
				return // truncated body; nothing more to check
			}
			snap := make([]byte, hdr.SnapBytes)
			io.ReadFull(r, snap)
			if _, err := tlx.ReadIndexBytes(snap, false); err != nil &&
				!errors.Is(err, tlx.ErrBadFormat) {
				t.Fatalf("snapshot load failed outside ErrBadFormat: %v", err)
			}
		}
		prev := hdr.SnapLSN
		for lsn := hdr.SnapLSN + 1; lsn <= hdr.TailLSN; lsn++ {
			rec, err := ReadShipRecord(r)
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("record decode failed outside ErrCorrupt: %v", err)
				}
				return
			}
			if rec.LSN <= prev && prev != hdr.SnapLSN {
				// The decoder itself does not order records; the receiver's
				// sequence check does. Nothing to assert beyond no-panic.
				return
			}
			prev = rec.LSN
		}
	})
}
