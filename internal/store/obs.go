package store

import (
	"context"
	"fmt"
	"log/slog"
	"strings"

	"tlevelindex/internal/obs"
)

// WAL and snapshot instruments, registered once against the process-wide
// registry. The append path splits its latency three ways — the write
// syscall, the fsync, and the whole Insert ack (lock + index insert + WAL
// append + fsync) — because fsync dominates on real disks and the split is
// what tells an operator whether a latency regression is the device or the
// index.
var (
	walAppendSeconds = obs.Default().Histogram("tlx_wal_append_seconds",
		"WAL record write syscall latency in seconds.", obs.LatencyBuckets())
	walFsyncSeconds = obs.Default().Histogram("tlx_wal_fsync_seconds",
		"WAL fsync latency in seconds.", obs.LatencyBuckets())
	walAckSeconds = obs.Default().Histogram("tlx_wal_ack_seconds",
		"Full insert acknowledgement latency in seconds (index insert + WAL append + fsync).",
		obs.LatencyBuckets())
	walAppendsTotal = obs.Default().Counter("tlx_wal_appends_total",
		"WAL records appended and fsync'd.")
	walFsyncsTotal = obs.Default().Counter("tlx_wal_fsyncs_total",
		"WAL fsync calls. Under group commit this grows slower than tlx_wal_appends_total; the ratio is fsyncs per record.")
	walGroupSize = obs.Default().Histogram("tlx_wal_group_size",
		"Records committed per WAL fsync group.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
	walAppendBytesTotal = obs.Default().Counter("tlx_wal_append_bytes_total",
		"Bytes appended to the WAL.")
	snapshotsTotal = obs.Default().Counter("tlx_snapshots_total",
		"Snapshots captured successfully.")
	snapshotFailuresTotal = obs.Default().Counter("tlx_snapshot_failures_total",
		"Snapshot attempts that failed (refused or errored).")
	snapshotSeconds = obs.Default().Histogram("tlx_snapshot_seconds",
		"Snapshot capture latency in seconds.", obs.LatencyBuckets())
	snapshotBytes = obs.Default().Gauge("tlx_snapshot_bytes",
		"Size of the most recent snapshot in bytes.")
)

// registerStoreGauges exposes the store's durability state as gauges. The
// registry replaces the reader on re-registration, so the newest opened
// store wins — matching the one-store-per-process deployment shape.
func registerStoreGauges(s *Store) {
	obs.Default().GaugeFunc("tlx_store_applied_lsn",
		"LSN of the last record applied to the index.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.applied)
		})
	obs.Default().GaugeFunc("tlx_store_snapshot_lsn",
		"LSN covered by the newest durable snapshot.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.snapLSN)
		})
	obs.Default().GaugeFunc("tlx_store_wal_bytes",
		"WAL record bytes accumulated since the last snapshot.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.bytesSinceSnap)
		})
	obs.Default().GaugeFunc("tlx_mmap_bytes",
		"Bytes of index state aliasing a snapshot memory mapping (0 = heap-backed).", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(s.ix.MmapBytes())
		})
	obs.Default().GaugeFunc("tlx_store_read_only",
		"1 when the store refuses writes after a WAL failure, else 0.", func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			if s.failed != nil {
				return 1
			}
			return 0
		})
}

// logfHandler adapts a printf-style Logf callback to slog so existing
// callers (tests passing t.Logf, lvserve before the slog flags existed)
// keep seeing every store event while the store itself logs structured
// records.
type logfHandler struct {
	logf  func(string, ...interface{})
	attrs []slog.Attr
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	b.WriteString(r.Message)
	for _, a := range h.attrs {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Resolve())
	}
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Resolve())
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	merged := make([]slog.Attr, 0, len(h.attrs)+len(attrs))
	merged = append(merged, h.attrs...)
	merged = append(merged, attrs...)
	return logfHandler{logf: h.logf, attrs: merged}
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }

// storeLogger resolves the configured logger: an explicit slog.Logger wins,
// a Logf callback is adapted, and with neither the store is silent.
func storeLogger(opts Options) *slog.Logger {
	if opts.Logger != nil {
		return opts.Logger
	}
	if opts.Logf != nil {
		return slog.New(logfHandler{logf: opts.Logf})
	}
	return obs.NopLogger()
}
