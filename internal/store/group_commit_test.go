package store

import (
	"os"
	"sync"
	"testing"

	tlx "tlevelindex"
	"tlevelindex/datagen"
)

// TestInsertBatchLSN: a mixed batch through the store must behave exactly
// like the same options through sequential InsertLSN — same ids, same LSN
// stamps, same recovered state — while paying the WAL one fsync.
func TestInsertBatchLSN(t *testing.T) {
	batch := testInserts()                // fresh options + a duplicate + a filtered one
	batch = append(batch, []float64{0.5}) // dimensionality mismatch

	seqDir, batDir := t.TempDir(), t.TempDir()
	seq := openStore(t, seqDir, Options{})
	bat := openStore(t, batDir, Options{})

	type ack struct {
		id  int
		lsn uint64
		ok  bool
	}
	want := make([]ack, len(batch))
	for i, opt := range batch {
		id, lsn, err := seq.InsertLSN(opt)
		want[i] = ack{id, lsn, err == nil}
	}

	fsyncsBefore := walFsyncsTotal.Value()
	results, stats, err := bat.InsertBatchLSN(batch)
	if err != nil {
		t.Fatalf("InsertBatchLSN: %v", err)
	}
	if d := walFsyncsTotal.Value() - fsyncsBefore; d != 1 {
		t.Errorf("batch cost %d fsyncs, want 1", d)
	}
	if len(results) != len(batch) {
		t.Fatalf("%d results for %d options", len(results), len(batch))
	}
	for i, res := range results {
		if (res.Err == nil) != want[i].ok {
			t.Fatalf("item %d: err %v, sequential ok=%v", i, res.Err, want[i].ok)
		}
		if res.Err != nil {
			continue
		}
		if res.ID != want[i].id || res.LSN != want[i].lsn {
			t.Fatalf("item %d: batch (id %d, lsn %d), sequential (id %d, lsn %d)",
				i, res.ID, res.LSN, want[i].id, want[i].lsn)
		}
	}
	if stats.Requests != 1 || stats.Records != len(batch) {
		t.Errorf("group stats %+v", stats)
	}
	if bat.AppliedLSN() != seq.AppliedLSN() {
		t.Fatalf("applied %d after batch, sequential %d", bat.AppliedLSN(), seq.AppliedLSN())
	}
	if stats.Logged != int(bat.AppliedLSN()) {
		t.Errorf("stats.Logged = %d, applied = %d", stats.Logged, bat.AppliedLSN())
	}
	assertSameAnswers(t, bat.Index(), seq.Index())

	// The batch-written store recovers to the same state.
	bat.kill()
	rec := reopen(t, batDir)
	if rec.Status().AppliedLSN != seq.AppliedLSN() {
		t.Fatalf("recovered applied %d, want %d", rec.Status().AppliedLSN, seq.AppliedLSN())
	}
	assertSameAnswers(t, rec.Index(), seq.Index())
	seq.Close()
}

// TestInsertBatchLSNEmpty: a zero-length batch is a durable no-op.
func TestInsertBatchLSNEmpty(t *testing.T) {
	s := openStore(t, t.TempDir(), Options{})
	defer s.Close()
	results, stats, err := s.InsertBatchLSN(nil)
	if err != nil || results != nil || stats.Logged != 0 {
		t.Fatalf("empty batch: %v %+v %v", results, stats, err)
	}
	if s.AppliedLSN() != 0 {
		t.Fatal("empty batch advanced the LSN")
	}
}

// TestGroupCommitAckOrdering runs many concurrent writers through the
// group-commit protocol (under -race this is also the protocol's data-race
// proof) and then verifies the acknowledgement contract record by record:
// every acknowledged (id, LSN) pair must appear in the WAL exactly as
// acknowledged — same id, same attributes, LSNs contiguous — and recovery
// must accept the whole log with the ids the writers were told.
func TestGroupCommitAckOrdering(t *testing.T) {
	const writers = 8
	dir := t.TempDir()
	s := openStore(t, dir, Options{})

	// Distinct well-separated options per writer so none is filtered and
	// ids are informative.
	perWriter := 6
	opts := datagen.Generate(datagen.IND, writers*perWriter, 2, 77)

	type ack struct {
		id    int
		lsn   uint64
		attrs []float64
	}
	acks := make(chan ack, writers*perWriter)
	fsyncsBefore := walFsyncsTotal.Value()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				opt := opts[w*perWriter+i]
				id, lsn, err := s.InsertLSN(opt)
				if err != nil {
					t.Errorf("writer %d insert %d: %v", w, i, err)
					return
				}
				if id >= 0 {
					acks <- ack{id, lsn, opt}
				}
			}
		}(w)
	}
	wg.Wait()
	close(acks)
	fsyncs := walFsyncsTotal.Value() - fsyncsBefore
	s.kill()

	sd, err := readSegment(segmentPath(dir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if sd.torn {
		t.Fatal("WAL torn after clean kill")
	}
	byLSN := make(map[uint64]record, len(sd.records))
	for i, rec := range sd.records {
		if rec.lsn != uint64(i+1) {
			t.Fatalf("record %d has LSN %d", i, rec.lsn)
		}
		byLSN[rec.lsn] = rec
	}
	nacks := 0
	for a := range acks {
		nacks++
		rec, ok := byLSN[a.lsn]
		if !ok {
			t.Fatalf("acknowledged LSN %d missing from the WAL", a.lsn)
		}
		if rec.id != int64(a.id) {
			t.Fatalf("LSN %d acknowledged id %d, WAL has %d", a.lsn, a.id, rec.id)
		}
		if len(rec.attrs) != len(a.attrs) {
			t.Fatalf("LSN %d attrs differ", a.lsn)
		}
		for i := range rec.attrs {
			if rec.attrs[i] != a.attrs[i] {
				t.Fatalf("LSN %d attrs differ", a.lsn)
			}
		}
	}
	if nacks != len(sd.records) {
		t.Fatalf("%d acknowledgements for %d WAL records", nacks, len(sd.records))
	}
	if fsyncs > uint64(len(sd.records)) {
		t.Errorf("%d fsyncs for %d records: more syncs than appends", fsyncs, len(sd.records))
	}
	t.Logf("group commit: %d records, %d fsyncs (%.2f fsyncs/record)",
		len(sd.records), fsyncs, float64(fsyncs)/float64(len(sd.records)))

	// Recovery replays the interleaved history and re-derives every
	// acknowledged id (the replay cross-check would fail otherwise).
	rec := reopen(t, dir)
	if rec.Status().AppliedLSN != uint64(len(sd.records)) {
		t.Fatalf("recovered %d of %d records", rec.Status().AppliedLSN, len(sd.records))
	}
}

// TestCrashTornGroupBoundary is the crash matrix extended to group commit:
// batches written through InsertBatchLSN land as fsync groups, and the WAL
// is cut at every group boundary (a crash between fsyncs) and inside every
// group (a crash mid-flush). Recovery at a boundary must keep exactly the
// fully-committed groups; a mid-group cut keeps the group's complete
// record prefix, all of it unacknowledged by construction.
func TestCrashTornGroupBoundary(t *testing.T) {
	base := t.TempDir()
	s := openStore(t, base, Options{})
	all := datagen.Generate(datagen.COR, 12, 2, 55)
	batches := [][][]float64{all[:3], all[3:4], all[4:9], all[9:]}
	boundaries := []uint64{0} // applied LSN after each committed group
	for bi, b := range batches {
		results, _, err := s.InsertBatchLSN(b)
		if err != nil {
			t.Fatalf("batch %d: %v", bi, err)
		}
		for i, res := range results {
			if res.Err != nil {
				t.Fatalf("batch %d item %d: %v", bi, i, res.Err)
			}
		}
		boundaries = append(boundaries, s.AppliedLSN())
	}
	s.kill()

	walPath := segmentPath(base, 0)
	offs := recordBoundaries(t, walPath) // offs[k] = byte size holding k records
	sd, err := readSegment(walPath)
	if err != nil {
		t.Fatal(err)
	}
	replayPrefix := func(k int) *tlx.Index {
		ix, err := tlx.Build(testData(30), testTau)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range sd.records[:k] {
			if _, err := ix.Insert(rec.attrs); err != nil {
				t.Fatal(err)
			}
		}
		return ix
	}
	for gi, lsn := range boundaries {
		k := int(lsn)
		dir := copyDir(t, base)
		if err := os.Truncate(segmentPath(dir, 0), offs[k]); err != nil {
			t.Fatal(err)
		}
		rec := reopen(t, dir)
		if got := rec.Status().AppliedLSN; got != lsn {
			t.Fatalf("cut at group boundary %d: applied %d, want %d", gi, got, lsn)
		}
		assertSameAnswers(t, rec.Index(), replayPrefix(k))

		// A crash mid-group: the device persisted part of the group's
		// records plus a torn one. Recovery keeps the complete prefix.
		if gi+1 < len(boundaries) && boundaries[gi+1] > lsn {
			cut := offs[k+1] - 1 // inside the group's first record
			dir := copyDir(t, base)
			if err := os.Truncate(segmentPath(dir, 0), cut); err != nil {
				t.Fatal(err)
			}
			rec := reopen(t, dir)
			if got := rec.Status().AppliedLSN; got != lsn {
				t.Fatalf("cut inside group %d: applied %d, want %d", gi+1, got, lsn)
			}
			assertSameAnswers(t, rec.Index(), replayPrefix(k))
			if int(boundaries[gi+1])-k > 1 {
				// Deeper into the group: complete records short of the
				// group fsync still replay (they were never acknowledged,
				// so keeping them is allowed — and they are valid history).
				cut := offs[k+1]
				dir := copyDir(t, base)
				if err := os.Truncate(segmentPath(dir, 0), cut); err != nil {
					t.Fatal(err)
				}
				rec := reopen(t, dir)
				if got := rec.Status().AppliedLSN; got != lsn+1 {
					t.Fatalf("cut after first record of group %d: applied %d, want %d",
						gi+1, got, lsn+1)
				}
				assertSameAnswers(t, rec.Index(), replayPrefix(k+1))
			}
		}
	}
}
