package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"time"
)

// The write-ahead log is a sequence of segment files, wal-<base>.log, where
// base is the LSN of the snapshot the segment was opened at: a segment
// created at snapshot n holds exactly the records n+1 .. n' (n' being the
// next snapshot's LSN), because rotation happens under the store's write
// lock at the moment the snapshot state is captured.
//
// Segment layout (all integers little-endian):
//
//	header:  8-byte magic "TLVLWAL1" | uint64 base LSN | uint32 CRC32(magic‖base)
//	record:  uint32 payload length   | uint32 CRC32(payload) | payload
//	payload: uint64 LSN | int64 acknowledged id | uint32 nattrs | nattrs × float64
//
// A record becomes durable — and the insert acknowledgeable — only after
// the segment file is fsync'd past it. The reader therefore treats the
// first malformed record as the torn tail of an interrupted write and
// reports the byte offset where the valid prefix ends, so recovery can
// truncate the file and append from there.

const (
	segMagic      = "TLVLWAL1"
	segHeaderSize = 8 + 8 + 4
	recHeaderSize = 4 + 4
	// minPayload is the fixed part of a record payload (LSN, id, nattrs).
	minPayload = 8 + 8 + 4
	// maxPayload bounds a record so a corrupt length field cannot drive a
	// giant allocation; 1<<20 float64 attributes is far beyond any option.
	maxPayload = minPayload + 8*(1<<20)
)

// ErrCorrupt reports on-disk state the recovery procedure cannot use.
var ErrCorrupt = errors.New("store: corrupt data")

// errShortHeader distinguishes a segment torn during creation (no record
// was ever acknowledged into it) from one with a damaged header.
var errShortHeader = errors.New("store: segment shorter than its header")

// record is one durable insert.
type record struct {
	lsn   uint64
	id    int64
	attrs []float64
}

func encodeRecord(rec record) []byte {
	payload := minPayload + 8*len(rec.attrs)
	buf := make([]byte, recHeaderSize+payload)
	binary.LittleEndian.PutUint32(buf[0:], uint32(payload))
	p := buf[recHeaderSize:]
	binary.LittleEndian.PutUint64(p[0:], rec.lsn)
	binary.LittleEndian.PutUint64(p[8:], uint64(rec.id))
	binary.LittleEndian.PutUint32(p[16:], uint32(len(rec.attrs)))
	for i, v := range rec.attrs {
		binary.LittleEndian.PutUint64(p[minPayload+8*i:], math.Float64bits(v))
	}
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(p))
	return buf
}

func decodePayload(p []byte) (record, error) {
	if len(p) < minPayload {
		return record{}, fmt.Errorf("%w: record payload %d bytes", ErrCorrupt, len(p))
	}
	rec := record{
		lsn: binary.LittleEndian.Uint64(p[0:]),
		id:  int64(binary.LittleEndian.Uint64(p[8:])),
	}
	nattrs := binary.LittleEndian.Uint32(p[16:])
	if int(nattrs)*8 != len(p)-minPayload {
		return record{}, fmt.Errorf("%w: record declares %d attrs in %d payload bytes", ErrCorrupt, nattrs, len(p))
	}
	if rec.id < 0 {
		return record{}, fmt.Errorf("%w: record id %d", ErrCorrupt, rec.id)
	}
	rec.attrs = make([]float64, nattrs)
	for i := range rec.attrs {
		rec.attrs[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[minPayload+8*i:]))
	}
	return rec, nil
}

// segment is the active WAL segment, open for appends.
type segment struct {
	f    *os.File
	path string
	base uint64
	size int64
}

// createSegment writes a fresh segment with the given base LSN and makes it
// durable (file and directory both fsync'd) before returning.
func createSegment(dir string, base uint64) (*segment, error) {
	path := segmentPath(dir, base)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], base)
	binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(hdr[:16]))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, err
	}
	return &segment{f: f, path: path, base: base, size: segHeaderSize}, nil
}

// openSegmentForAppend reopens an existing segment whose valid prefix is
// validSize bytes: the torn tail (if any) is truncated away so new records
// land exactly after the last durable one.
func openSegmentForAppend(path string, base uint64, validSize int64) (*segment, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &segment{f: f, path: path, base: base, size: validSize}, nil
}

// writeRecord appends one record's bytes WITHOUT making them durable: the
// caller must sync() before acknowledging anything written since the last
// sync. Splitting the write from the fsync is what lets the group-commit
// path lay down a whole group of records and pay the device one fsync for
// all of them.
func (s *segment) writeRecord(rec record) (int, error) {
	buf := encodeRecord(rec)
	writeStart := time.Now()
	if _, err := s.f.Write(buf); err != nil {
		return 0, err
	}
	walAppendSeconds.Observe(time.Since(writeStart).Seconds())
	walAppendsTotal.Inc()
	walAppendBytesTotal.Add(uint64(len(buf)))
	s.size += int64(len(buf))
	return len(buf), nil
}

// sync makes every record written so far durable. Records become
// acknowledgeable only after their sync returns nil.
func (s *segment) sync() error {
	syncStart := time.Now()
	if err := s.f.Sync(); err != nil {
		return err
	}
	walFsyncSeconds.Observe(time.Since(syncStart).Seconds())
	walFsyncsTotal.Inc()
	return nil
}

// append writes one record and fsyncs before returning: when append returns
// nil the record is durable and the insert may be acknowledged.
func (s *segment) append(rec record) (int, error) {
	n, err := s.writeRecord(rec)
	if err != nil {
		return 0, err
	}
	if err := s.sync(); err != nil {
		return 0, err
	}
	return n, nil
}

func (s *segment) Close() error { return s.f.Close() }

// segmentData is the parse result of one segment file.
type segmentData struct {
	base      uint64
	records   []record
	validSize int64 // bytes up to and including the last valid record
	torn      bool  // the file continues past validSize with garbage
}

// readSegment parses a segment file. A malformed or truncated record stops
// the scan and marks the segment torn at validSize; only a damaged header
// is a hard error (errShortHeader when the file cannot even hold one).
func readSegment(path string) (*segmentData, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < segHeaderSize {
		return nil, errShortHeader
	}
	br := bufio.NewReader(f)
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, err
	}
	if string(hdr[:8]) != segMagic {
		return nil, fmt.Errorf("%w: bad WAL magic in %s", ErrCorrupt, path)
	}
	if binary.LittleEndian.Uint32(hdr[16:]) != crc32.ChecksumIEEE(hdr[:16]) {
		return nil, fmt.Errorf("%w: WAL header checksum in %s", ErrCorrupt, path)
	}
	sd := &segmentData{
		base:      binary.LittleEndian.Uint64(hdr[8:]),
		validSize: segHeaderSize,
	}
	fileSize := st.Size()
	for sd.validSize < fileSize {
		var rh [recHeaderSize]byte
		if _, err := io.ReadFull(br, rh[:]); err != nil {
			sd.torn = true
			return sd, nil
		}
		payloadLen := binary.LittleEndian.Uint32(rh[0:])
		wantCRC := binary.LittleEndian.Uint32(rh[4:])
		if payloadLen < minPayload || payloadLen > maxPayload ||
			sd.validSize+recHeaderSize+int64(payloadLen) > fileSize {
			sd.torn = true
			return sd, nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			sd.torn = true
			return sd, nil
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			sd.torn = true
			return sd, nil
		}
		rec, err := decodePayload(payload)
		if err != nil {
			sd.torn = true
			return sd, nil
		}
		sd.records = append(sd.records, rec)
		sd.validSize += recHeaderSize + int64(payloadLen)
	}
	return sd, nil
}
