package store

import (
	"os"
	"path/filepath"
	"testing"

	tlx "tlevelindex"
)

// The crash matrix: every test prepares a real store, kills it (file
// handles dropped, no final snapshot — exactly what fsync guarantees after
// SIGKILL), damages the directory the way a specific crash would, and
// demands that recovery yields an index byte-identical to a never-crashed
// reference holding every acknowledged insert that the damage model allows
// to survive.

// crashedStore runs the insert sequence against a store in dir, kills it,
// and returns the subsequence of inserts that were acknowledged (id >= 0),
// in WAL order.
func crashedStore(t *testing.T, dir string, inserts [][]float64, snapshotAfter int) [][]float64 {
	t.Helper()
	s := openStore(t, dir, Options{})
	var accepted [][]float64
	for i, opt := range inserts {
		id, err := s.Insert(opt)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if id >= 0 {
			accepted = append(accepted, opt)
		}
		if snapshotAfter > 0 && i == snapshotAfter-1 {
			if _, err := s.Snapshot(); err != nil {
				t.Fatalf("mid-run snapshot: %v", err)
			}
		}
	}
	s.kill()
	return accepted
}

// copyDir clones a data directory so one crashed state can be damaged many
// ways.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		blob, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// recordBoundaries returns the byte offsets at which each record of the
// segment ends (offset 0 of the slice = header only, no records).
func recordBoundaries(t *testing.T, path string) []int64 {
	t.Helper()
	sd, err := readSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	if sd.torn {
		t.Fatalf("segment %s torn before damage", path)
	}
	offs := []int64{segHeaderSize}
	at := int64(segHeaderSize)
	for _, rec := range sd.records {
		at += int64(len(encodeRecord(rec)))
		offs = append(offs, at)
	}
	return offs
}

func reopen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Logf: t.Logf}, nil)
	if err != nil {
		t.Fatalf("recovery from %s failed: %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestCrashTornWALTail simulates a kill at every fsync boundary of the WAL:
// the file is cut at each record boundary and at points inside the next
// record. Recovery must keep exactly the records that were completely
// written — every acknowledged insert whose fsync returned — and discard
// the torn one, matching a reference that performed the surviving prefix.
func TestCrashTornWALTail(t *testing.T) {
	base := t.TempDir()
	inserts := testInserts()
	accepted := crashedStore(t, base, inserts, 0)
	if len(accepted) < 4 {
		t.Fatalf("test needs several accepted inserts, got %d", len(accepted))
	}
	walPath := segmentPath(base, 0)
	offs := recordBoundaries(t, walPath)
	if len(offs) != len(accepted)+1 {
		t.Fatalf("%d WAL records for %d accepted inserts", len(offs)-1, len(accepted))
	}
	for j := 0; j < len(accepted); j++ {
		cuts := []int64{offs[j], offs[j] + 3, offs[j+1] - 1}
		for _, cut := range cuts {
			if cut < offs[j] || cut >= offs[j+1] {
				continue
			}
			dir := copyDir(t, base)
			if err := os.Truncate(segmentPath(dir, 0), cut); err != nil {
				t.Fatal(err)
			}
			s := reopen(t, dir)
			if got := s.Status().AppliedLSN; got != uint64(j) {
				t.Fatalf("cut at %d (boundary %d): applied %d records, want %d", cut, j, got, j)
			}
			ref, _ := reference(t, accepted[:j])
			assertSameAnswers(t, s.Index(), ref)
		}
	}
	// The full, undamaged file recovers everything.
	s := reopen(t, copyDir(t, base))
	if got := s.Status().AppliedLSN; got != uint64(len(accepted)) {
		t.Fatalf("undamaged recovery applied %d, want %d", got, len(accepted))
	}
	ref, _ := reference(t, accepted)
	assertSameAnswers(t, s.Index(), ref)
}

// TestCrashBitFlippedWALRecord: a flipped byte inside a record makes it and
// everything after it the torn tail; recovery keeps the prefix.
func TestCrashBitFlippedWALRecord(t *testing.T) {
	base := t.TempDir()
	accepted := crashedStore(t, base, testInserts(), 0)
	offs := recordBoundaries(t, segmentPath(base, 0))
	j := len(accepted) / 2
	dir := copyDir(t, base)
	path := segmentPath(dir, 0)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[offs[j]+recHeaderSize+2] ^= 0x40 // inside record j's payload
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s := reopen(t, dir)
	if got := s.Status().AppliedLSN; got != uint64(j) {
		t.Fatalf("applied %d records after bit flip at record %d", got, j)
	}
	ref, _ := reference(t, accepted[:j])
	assertSameAnswers(t, s.Index(), ref)
}

// TestCrashCorruptNewestSnapshot: the newest snapshot is damaged (bit rot,
// torn disk write the rename ordering did not catch); recovery must fall
// back to the previous snapshot and replay the full WAL chain across the
// rotation, losing nothing.
func TestCrashCorruptNewestSnapshot(t *testing.T) {
	base := t.TempDir()
	inserts := testInserts()
	accepted := crashedStore(t, base, inserts, len(inserts)/2)
	snaps, _, err := scanDir(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("setup produced %d snapshots, want 2", len(snaps))
	}
	newest := snaps[len(snaps)-1]
	blob, err := os.ReadFile(newest.path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x01
	if err := os.WriteFile(newest.path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	s := reopen(t, base)
	st := s.Status()
	if st.SnapshotFallbacks != 1 {
		t.Errorf("fallbacks = %d, want 1", st.SnapshotFallbacks)
	}
	if st.AppliedLSN != uint64(len(accepted)) {
		t.Fatalf("recovered %d records, want %d", st.AppliedLSN, len(accepted))
	}
	if st.RecordsReplayed != len(accepted) {
		t.Errorf("replayed %d, want %d", st.RecordsReplayed, len(accepted))
	}
	ref, _ := reference(t, accepted)
	assertSameAnswers(t, s.Index(), ref)
}

// TestCrashAllSnapshotsCorrupt: with no loadable snapshot the store must
// refuse to serve rather than silently rebuild and drop acknowledged data.
func TestCrashAllSnapshotsCorrupt(t *testing.T) {
	base := t.TempDir()
	inserts := testInserts()
	crashedStore(t, base, inserts, len(inserts)/2)
	snaps, _, err := scanDir(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, sn := range snaps {
		blob, err := os.ReadFile(sn.path)
		if err != nil {
			t.Fatal(err)
		}
		blob[len(blob)/3] ^= 0x10
		if err := os.WriteFile(sn.path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Open(Options{Dir: base}, nil); err == nil {
		t.Fatal("recovery served a directory with no loadable snapshot")
	}
}

// TestCrashDuringSegmentRotation: a kill between a snapshot capture and the
// new segment's first fsync leaves a header-less segment file; no record
// was acknowledged into it, so recovery drops and recreates it.
func TestCrashDuringSegmentRotation(t *testing.T) {
	base := t.TempDir()
	inserts := testInserts()
	accepted := crashedStore(t, base, inserts, len(inserts)/2)
	_, segs, err := scanDir(base)
	if err != nil {
		t.Fatal(err)
	}
	newest := segs[len(segs)-1]
	// Chop the newest segment below its header — but that segment holds
	// acknowledged records, so first re-crash the scenario properly: only a
	// segment with no durable records may be torn at creation. Rebuild the
	// state: take a snapshot of everything, then tear the fresh segment.
	s := reopen(t, base)
	if _, err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s.kill()
	_, segs, err = scanDir(base)
	if err != nil {
		t.Fatal(err)
	}
	newest = segs[len(segs)-1]
	if err := os.Truncate(newest.path, 5); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, base)
	if got := s2.Status().AppliedLSN; got != uint64(len(accepted)) {
		t.Fatalf("recovered %d records, want %d", got, len(accepted))
	}
	ref, _ := reference(t, accepted)
	assertSameAnswers(t, s2.Index(), ref)
}

// TestCrashMissingSealedSegment: if a sealed segment disappears (or a
// corrupt record hides its tail) while a later snapshot is also unusable,
// acknowledged records are unreachable — recovery must fail loudly, never
// serve a state with silent holes.
func TestCrashMissingSealedSegment(t *testing.T) {
	base := t.TempDir()
	inserts := testInserts()
	crashedStore(t, base, inserts, len(inserts)/2)
	snaps, segs, err := scanDir(base)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot so recovery needs the full WAL chain,
	// then delete the sealed segment holding the first half of it.
	newest := snaps[len(snaps)-1]
	blob, err := os.ReadFile(newest.path)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x02
	if err := os.WriteFile(newest.path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(segs[0].path); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: base, Logf: t.Logf}, nil); err == nil {
		t.Fatal("recovery bridged a WAL gap")
	}
}

// TestRecoveredStoreKeepsServing: after a crash recovery the store is fully
// live — inserts continue with the right ids and survive another restart.
func TestRecoveredStoreKeepsServing(t *testing.T) {
	base := t.TempDir()
	inserts := testInserts()
	accepted := crashedStore(t, base, inserts, 0)
	s := reopen(t, base)
	ref, _ := reference(t, accepted)
	wantID, err := ref.Insert([]float64{0.97, 0.96})
	if err != nil {
		t.Fatal(err)
	}
	gotID, err := s.Insert([]float64{0.97, 0.96})
	if err != nil || gotID != wantID {
		t.Fatalf("post-recovery insert id %d (%v), want %d", gotID, err, wantID)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, base)
	assertSameAnswers(t, s2.Index(), ref)
	var ix *tlx.Index = s2.Index()
	if rank, err := ix.MaxRank(wantID); err != nil || rank < 1 {
		t.Errorf("inserted option unreachable after second restart: rank=%d err=%v", rank, err)
	}
}
