package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay throws arbitrary bytes at the segment reader — the exact
// code path recovery trusts with a crash-damaged file. It must never panic,
// and whatever it accepts must satisfy the reader's own invariants: decoded
// records round-trip through the encoder to the bytes on disk, and the
// valid prefix never exceeds the file.
func FuzzWALReplay(f *testing.F) {
	// Seed corpus: a well-formed two-record segment, its torn truncations,
	// a bit-flipped variant, a bare header, and junk.
	dir := f.TempDir()
	seg, err := createSegment(dir, 7)
	if err != nil {
		f.Fatal(err)
	}
	for i, rec := range []record{
		{lsn: 8, id: 30, attrs: []float64{0.25, 0.5, 0.75}},
		{lsn: 9, id: 31, attrs: []float64{0.1, 0.9}},
	} {
		if _, err := seg.append(rec); err != nil {
			f.Fatalf("seed record %d: %v", i, err)
		}
	}
	seg.Close()
	blob, err := os.ReadFile(seg.path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)-3])
	f.Add(blob[:segHeaderSize])
	flipped := append([]byte(nil), blob...)
	flipped[segHeaderSize+9] ^= 0x20
	f.Add(flipped)
	f.Add([]byte(segMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal-fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		sd, err := readSegment(path)
		if err != nil {
			return
		}
		if sd.validSize < segHeaderSize || sd.validSize > int64(len(data)) {
			t.Fatalf("validSize %d outside [header, %d]", sd.validSize, len(data))
		}
		// Re-encoding the accepted records must reproduce the valid prefix
		// byte for byte: the reader may not invent or reinterpret data.
		at := int64(segHeaderSize)
		for i, rec := range sd.records {
			enc := encodeRecord(rec)
			end := at + int64(len(enc))
			if end > int64(len(data)) {
				t.Fatalf("record %d extends past the file", i)
			}
			for j, b := range enc {
				if data[at+int64(j)] != b {
					t.Fatalf("record %d does not round-trip at byte %d", i, j)
				}
			}
			at = end
		}
		if at != sd.validSize {
			t.Fatalf("records end at %d but validSize is %d", at, sd.validSize)
		}
		if !sd.torn && sd.validSize != int64(len(data)) {
			t.Fatal("untorn segment with trailing bytes")
		}
	})
}
