// Package store makes a served τ-LevelIndex durable: every accepted insert
// is appended to a CRC-checked write-ahead log and fsync'd before it is
// acknowledged, the full index is periodically captured in atomic snapshots
// via its binary serialization, and opening a data directory recovers the
// exact pre-crash state by loading the newest valid snapshot and replaying
// the WAL tail.
//
// # Durability contract
//
// An insert acknowledged by Insert (non-negative id, nil error) survives
// any crash: its WAL record was fsync'd before Insert returned. An insert
// interrupted by a crash was never acknowledged, and recovery discards its
// torn record. Replay re-applies records through the same deterministic
// Insert path that produced them and cross-checks every re-assigned id
// against the acknowledged id stored in the record, so silent divergence is
// impossible — the recovered index is byte-identical to the pre-crash one.
//
// Writes commit in groups: concurrent Insert/InsertBatchLSN callers
// coalesce into one leader-driven commit that applies every option in one
// amortized index batch, lays down all WAL records, and pays the device a
// single fsync (see commit). The contract is unchanged — no caller is
// acknowledged before the fsync covering its own records returns — but N
// concurrent writers cost far fewer than N fsyncs, and a crash lands on a
// group boundary: either all of a group's records are durable or replay
// stops at the torn tail inside it, and every record past the last
// completed fsync was unacknowledged by construction.
//
// # File layout
//
//	<dir>/snapshot-<LSN>.idx   index serialization (X2, self-checksummed)
//	<dir>/wal-<base>.log       records base+1.. (see wal.go for the format)
//
// The two newest snapshots are retained: if the newest is corrupt (torn
// rename, bit rot), recovery falls back to the previous one and replays a
// correspondingly longer WAL suffix. Segments are rotated at each snapshot
// and pruned once no retained snapshot needs them.
//
// # Limitations
//
// Only inserts are logged. On-demand extension (a query with k > τ) is an
// in-memory cache and is not persisted; because the index also rejects
// inserts while extended, the WAL cannot record state that depends on an
// extension. Snapshots of an extended index are refused for the same
// reason. A recovered index does not retain the full dataset, so queries
// with k > τ return ErrNeedsFullData after a restart (the documented
// ReadIndex semantics).
package store

import (
	"bytes"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"sync"
	"sync/atomic"
	"time"

	tlx "tlevelindex"
)

// Options configures a Store.
type Options struct {
	// Dir is the data directory; it is created if missing.
	Dir string
	// SnapshotBytes triggers an automatic background snapshot once the WAL
	// holds at least this many record bytes since the last snapshot.
	// Zero or negative disables the byte trigger.
	SnapshotBytes int64
	// SnapshotRecords triggers an automatic background snapshot once the
	// WAL holds at least this many records since the last snapshot.
	// Zero or negative disables the record trigger.
	SnapshotRecords int
	// SnapshotInterval triggers an automatic background snapshot whenever
	// the newest snapshot is older than this, even if no insert tripped the
	// byte or record thresholds — a quiet primary still produces fresh
	// snapshots for bootstrapping replicas. Zero disables the timer.
	SnapshotInterval time.Duration
	// MmapLoad recovers the snapshot by memory-mapping it (zero-copy X3
	// load) instead of reading it onto the heap, making startup cost
	// independent of index size. Falls back to the heap load where the
	// platform or file layout forbids aliasing.
	MmapLoad bool
	// Logf receives recovery and snapshot diagnostics formatted as single
	// lines; nil discards them. Logger takes precedence when both are set.
	Logf func(format string, args ...interface{})
	// Logger receives recovery, snapshot, and WAL lifecycle events as
	// structured records. Nil falls back to Logf (adapted), then to a
	// discard logger.
	Logger *slog.Logger
}

// Store owns a durable index: the in-memory τ-LevelIndex plus its WAL and
// snapshots. All index access must go through the store's lock; the serve
// layer shares it via Mutex.
type Store struct {
	opts Options
	log  *slog.Logger

	mu      sync.RWMutex // guards ix, applied, seg, counters, failed, closed
	ix      *tlx.Index
	applied uint64 // LSN of the last record applied to ix
	// appliedA mirrors applied for lock-free readers. The serve layer reads
	// it on the query path while already holding mu (sync.RWMutex forbids
	// recursive RLock) and from cache lookups that must not contend with
	// writers at all. Written only while mu is held for writing.
	appliedA atomic.Uint64
	seg      *segment
	failed   error // a WAL write failed: memory and disk diverged, refuse writes
	closed   bool

	snapLSN        uint64
	snapTime       time.Time
	bytesSinceSnap int64
	recsSinceSnap  int

	replayed      int
	recoveredFrom string
	fallbacks     int

	snapMu  sync.Mutex // serializes whole snapshot attempts
	trigger chan struct{}
	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup

	// Group commit (see commit): pending insert requests queue under qmu;
	// whoever holds leaderMu drains the queue and commits the whole group
	// with one index batch apply and one WAL fsync.
	qmu      sync.Mutex
	queue    []*insertReq
	leaderMu sync.Mutex
}

// insertReq is one caller's pending insert work: a batch of options (a
// single Insert is a batch of one) and the channel its commit outcome is
// delivered on — strictly after the fsync covering its records returns.
type insertReq struct {
	opts  [][]float64
	start time.Time
	done  chan insertGroupRes
}

// insertGroupRes is the commit outcome delivered to one caller: its
// per-option results plus the stats of the group it rode in. err is a
// store-level failure (closed, read-only, WAL error) voiding the whole
// group; per-option failures live in results[i].Err.
type insertGroupRes struct {
	results []BatchResult
	stats   GroupStats
	err     error
}

// BatchResult is the outcome of one option of a batch insert: the dataset
// id it resolved to (-1 when filtered or errored), the LSN stamping it (for
// filtered or errored options, the LSN of the last preceding accepted
// record — the version a reader must be at to observe this item's
// non-effect), and its per-option error.
type BatchResult struct {
	ID  int
	LSN uint64
	Err error
}

// GroupStats describes the commit group a request rode in: how many caller
// requests and options were coalesced, how many records were logged under
// the group's single fsync, and the engine's amortized maintenance times.
type GroupStats struct {
	// Requests is the number of concurrent callers coalesced into the group.
	Requests int
	// Records is the total option count across the group.
	Records int
	// Logged counts options that were appended to the WAL (accepted by the
	// index or resolved to a duplicate — exactly the records replay will
	// re-apply). The group paid one fsync for all of them.
	Logged int
	// ThawNS and FinalizeNS are the engine's shared maintenance phases for
	// the whole group (see tlevelindex.BatchInsertStats).
	ThawNS     int64
	FinalizeNS int64
}

// Open recovers a Store from dir. An empty directory is initialized from
// build: the fresh index is captured as snapshot 0 so later restarts never
// rebuild. A non-empty directory ignores build entirely — state comes from
// the newest loadable snapshot plus the WAL tail. Open fails rather than
// serve a directory whose every snapshot is corrupt or whose WAL has lost
// acknowledged records anywhere but the torn tail.
func Open(opts Options, build func() (*tlx.Index, error)) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: no data directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		opts:    opts,
		log:     storeLogger(opts),
		trigger: make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	snaps, segs, err := scanDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(snaps) == 0 {
		if len(segs) > 0 {
			return nil, fmt.Errorf("%w: %s has WAL segments but no snapshot", ErrCorrupt, opts.Dir)
		}
		if build == nil {
			return nil, fmt.Errorf("store: %s is empty and no builder was given", opts.Dir)
		}
		if err := s.initialize(build); err != nil {
			return nil, err
		}
	} else if err := s.recover(snaps, segs); err != nil {
		return nil, err
	}
	if opts.SnapshotBytes > 0 || opts.SnapshotRecords > 0 || opts.SnapshotInterval > 0 {
		s.wg.Add(1)
		go s.autoSnapshotLoop()
	}
	registerStoreGauges(s)
	return s, nil
}

// initialize captures a freshly built index as snapshot 0 and opens the
// first WAL segment.
func (s *Store) initialize(build func() (*tlx.Index, error)) error {
	ix, err := build()
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		return err
	}
	if _, err := writeSnapshot(s.opts.Dir, 0, buf.Bytes()); err != nil {
		return err
	}
	seg, err := createSegment(s.opts.Dir, 0)
	if err != nil {
		return err
	}
	s.ix, s.seg, s.snapTime, s.recoveredFrom = ix, seg, time.Now(), "initial build"
	snapshotBytes.Set(float64(buf.Len()))
	s.log.Info("store: initialized", "dir", s.opts.Dir, "snapshotLsn", 0, "snapshotBytes", buf.Len())
	return nil
}

// recover loads the newest valid snapshot and replays the WAL tail.
func (s *Store) recover(snaps, segs []fileEntry) error {
	for i := len(snaps) - 1; i >= 0; i-- {
		ix, err := s.loadSnapshot(snaps[i].path)
		if err != nil {
			s.log.Warn("store: snapshot unusable; falling back", "path", snaps[i].path, "err", err)
			s.fallbacks++
			continue
		}
		s.ix = ix
		s.applied = snaps[i].lsn
		s.appliedA.Store(snaps[i].lsn)
		s.snapLSN = snaps[i].lsn
		s.recoveredFrom = snaps[i].path
		if st, serr := os.Stat(snaps[i].path); serr == nil {
			s.snapTime = st.ModTime()
		}
		break
	}
	if s.ix == nil {
		return fmt.Errorf("%w: no loadable snapshot in %s", ErrCorrupt, s.opts.Dir)
	}
	// Replay every segment in LSN order. Records at or below the snapshot
	// LSN are already part of the loaded state and are skipped; a gap above
	// it means acknowledged records were lost — refuse to serve.
	for i, sg := range segs {
		last := i == len(segs)-1
		sd, err := readSegment(sg.path)
		if err != nil {
			if last && errors.Is(err, errShortHeader) {
				// Torn during creation: no record was ever acknowledged
				// into it. Replace it with a fresh segment below.
				s.log.Warn("store: removing segment torn at creation", "path", sg.path)
				os.Remove(sg.path)
				segs = segs[:i]
				break
			}
			return err
		}
		if sd.torn {
			if !last {
				s.log.Warn("store: sealed segment has a corrupt record", "path", sg.path)
			} else {
				s.log.Warn("store: truncating torn WAL tail", "path", sg.path, "validBytes", sd.validSize)
			}
		}
		// A segment's base is the snapshot LSN it was rotated at, so every
		// record up to base existed when it was created: starting past the
		// applied point means acknowledged records vanished (a corrupt
		// record inside an earlier sealed segment, or a pruning accident).
		if sd.base > s.applied {
			return fmt.Errorf("%w: WAL gap: applied through %d but segment %s begins at %d",
				ErrCorrupt, s.applied, sg.path, sd.base)
		}
		for _, rec := range sd.records {
			if rec.lsn <= s.applied {
				continue
			}
			if rec.lsn != s.applied+1 {
				return fmt.Errorf("%w: WAL gap: applied through %d, next record %d (%s)",
					ErrCorrupt, s.applied, rec.lsn, sg.path)
			}
			id, err := s.ix.Insert(rec.attrs)
			if err != nil {
				return fmt.Errorf("store: replay of record %d failed: %v", rec.lsn, err)
			}
			if int64(id) != rec.id {
				return fmt.Errorf("%w: replay diverged at record %d: re-assigned id %d, acknowledged id %d",
					ErrCorrupt, rec.lsn, id, rec.id)
			}
			s.applied++
			s.appliedA.Store(s.applied)
			s.replayed++
		}
		if last {
			seg, err := openSegmentForAppend(sg.path, sd.base, sd.validSize)
			if err != nil {
				return err
			}
			s.seg = seg
			s.bytesSinceSnap = sd.validSize - segHeaderSize
			s.recsSinceSnap = int(s.applied - s.snapLSN)
		}
	}
	if s.seg == nil {
		seg, err := createSegment(s.opts.Dir, s.applied)
		if err != nil {
			return err
		}
		s.seg = seg
	}
	s.log.Info("store: recovered", "dir", s.opts.Dir, "from", s.recoveredFrom,
		"replayed", s.replayed, "appliedLsn", s.applied, "fallbacks", s.fallbacks)
	return nil
}

func (s *Store) loadSnapshot(path string) (*tlx.Index, error) {
	if s.opts.MmapLoad {
		// Zero-copy where the platform allows; OpenIndexFile itself falls
		// back to a heap read when mmap is unavailable or nothing aliases.
		return tlx.OpenIndexFile(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tlx.ReadIndex(f)
}

// Index returns the recovered index. The pointer is stable for the life of
// the store; all access must be synchronized via Mutex.
func (s *Store) Index() *tlx.Index { return s.ix }

// Mutex returns the lock guarding the index so the serve layer and the
// store serialize index access against each other.
func (s *Store) Mutex() *sync.RWMutex { return &s.mu }

// AppliedLSN returns the LSN of the last acknowledged insert without
// taking the store lock: one atomic load, safe to call while the caller
// already holds Mutex in either mode. It is the version stamp the serve
// layer pairs with cached answers and replica snapshots.
func (s *Store) AppliedLSN() uint64 { return s.appliedA.Load() }

// Insert applies an option to the index and, if it was accepted, makes it
// durable before acknowledging: the WAL record is fsync'd before Insert
// returns. Filtered options (id -1) change nothing and are not logged.
func (s *Store) Insert(option []float64) (int, error) {
	id, _, err := s.InsertLSN(option)
	return id, err
}

// InsertLSN is Insert also reporting the LSN of the accepted record — the
// exact version stamp of this insert, not whatever the store has applied
// by return time. A filtered option reports the unchanged current LSN.
//
// Concurrent callers coalesce: each call commits as a group of one or more
// requests sharing a single WAL fsync (see commit), so N writers cost far
// fewer than N fsyncs while every acknowledgement still waits for the
// fsync covering its own record.
func (s *Store) InsertLSN(option []float64) (int, uint64, error) {
	res := s.commit(&insertReq{opts: [][]float64{option}, start: time.Now(),
		done: make(chan insertGroupRes, 1)})
	if res.err != nil {
		return -1, s.appliedA.Load(), res.err
	}
	r := res.results[0]
	return r.ID, r.LSN, r.Err
}

// InsertBatchLSN applies a whole batch of options under one lock hold —
// one amortized index batch apply, one group of WAL appends, one fsync —
// and reports a per-option BatchResult in input order plus the stats of
// the commit group the batch rode in. The returned error is a store-level
// failure (closed, read-only, WAL write error) voiding every item;
// per-option rejections are reported in their BatchResult only.
func (s *Store) InsertBatchLSN(options [][]float64) ([]BatchResult, GroupStats, error) {
	if len(options) == 0 {
		return nil, GroupStats{}, nil
	}
	res := s.commit(&insertReq{opts: options, start: time.Now(),
		done: make(chan insertGroupRes, 1)})
	return res.results, res.stats, res.err
}

// commit runs the leader/follower group-commit protocol: the request joins
// the pending queue, then contends for leadership. The leader drains the
// queue and commits everyone's records together (processGroup); followers
// simply find their outcome already delivered when they next hold the
// leader slot. No outcome is delivered before the fsync covering its
// records returns, so an acknowledged insert is always durable.
func (s *Store) commit(req *insertReq) insertGroupRes {
	s.qmu.Lock()
	s.queue = append(s.queue, req)
	s.qmu.Unlock()
	s.leaderMu.Lock()
	select {
	case res := <-req.done:
		// A previous leader drained us into its group and committed it.
		s.leaderMu.Unlock()
		return res
	default:
	}
	s.qmu.Lock()
	group := s.queue
	s.queue = nil
	s.qmu.Unlock()
	s.processGroup(group)
	s.leaderMu.Unlock()
	return <-req.done
}

// processGroup commits one group: a single index batch apply, one WAL
// record per logged option at consecutive LSNs, one fsync, then delivery.
// The store lock is held across apply+log+fsync so snapshots can never
// capture records the device has not confirmed.
func (s *Store) processGroup(group []*insertReq) {
	total := 0
	for _, r := range group {
		total += len(r.opts)
	}
	all := make([][]float64, 0, total)
	for _, r := range group {
		all = append(all, r.opts...)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		deliverErr(group, errors.New("store: closed"))
		return
	}
	if s.failed != nil {
		err := fmt.Errorf("store: read-only after WAL failure: %v", s.failed)
		s.mu.Unlock()
		deliverErr(group, err)
		return
	}
	results, bstats := s.ix.InsertBatch(all)
	items := make([]BatchResult, total)
	next := s.applied
	var werr error
	var nbytes int64
	for i, res := range results {
		if werr == nil && res.Err == nil && res.ID >= 0 {
			// Accepted or duplicate: exactly the options the sequential path
			// logs, so replay re-derives identical ids.
			next++
			n, e := s.seg.writeRecord(record{lsn: next, id: int64(res.ID), attrs: all[i]})
			if e != nil {
				werr = e
			}
			nbytes += int64(n)
		}
		items[i] = BatchResult{ID: res.ID, LSN: next, Err: res.Err}
	}
	if werr == nil && next > s.applied {
		werr = s.seg.sync()
	}
	if werr != nil {
		// The in-memory index has the group's options but the log does not;
		// any further write would make replay assign ids that contradict the
		// acknowledged ones. Fail the store for writes; nothing in this
		// group is acknowledged.
		s.failed = werr
		s.mu.Unlock()
		s.log.Error("store: WAL append failed, store is now read-only", "err", werr)
		deliverErr(group, fmt.Errorf("store: WAL append failed, store is now read-only: %v", werr))
		return
	}
	logged := int(next - s.applied)
	// One visibility bump for the whole group: caches and replicas see the
	// applied LSN jump from its old value to next in a single store.
	s.applied = next
	s.appliedA.Store(next)
	s.recsSinceSnap += logged
	s.bytesSinceSnap += nbytes
	trip := (s.opts.SnapshotRecords > 0 && s.recsSinceSnap >= s.opts.SnapshotRecords) ||
		(s.opts.SnapshotBytes > 0 && s.bytesSinceSnap >= s.opts.SnapshotBytes)
	s.mu.Unlock()
	if logged > 0 {
		walGroupSize.Observe(float64(logged))
	}
	stats := GroupStats{Requests: len(group), Records: total, Logged: logged,
		ThawNS: bstats.ThawNS, FinalizeNS: bstats.FinalizeNS}
	now := time.Now()
	off := 0
	for _, r := range group {
		res := items[off : off+len(r.opts)]
		// Ack latency keeps the sequential path's meaning: only requests
		// that actually logged a record observe (filtered and rejected
		// inserts never paid for an append or fsync).
		for _, it := range res {
			if it.Err == nil && it.ID >= 0 {
				walAckSeconds.Observe(now.Sub(r.start).Seconds())
				break
			}
		}
		r.done <- insertGroupRes{results: res, stats: stats}
		off += len(r.opts)
	}
	if trip {
		select {
		case s.trigger <- struct{}{}:
		default:
		}
	}
}

// deliverErr voids a whole group with one store-level error.
func deliverErr(group []*insertReq, err error) {
	for _, r := range group {
		r.done <- insertGroupRes{err: err}
	}
}

// SnapshotInfo describes one snapshot attempt.
type SnapshotInfo struct {
	LSN      uint64  `json:"lsn"`
	Bytes    int64   `json:"bytes"`
	File     string  `json:"file"`
	TookMs   float64 `json:"tookMs"`
	UpToDate bool    `json:"upToDate"`
}

// Snapshot captures the current index state durably and rotates the WAL.
// When the newest snapshot already covers every applied record it returns
// immediately with UpToDate set. An index holding an on-demand extension
// cannot be snapshotted (the error wraps tlevelindex.ErrExtended).
func (s *Store) Snapshot() (SnapshotInfo, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return SnapshotInfo{}, errors.New("store: closed")
	}
	if s.ix.MaxMaterializedLevel() > s.ix.Tau() {
		s.mu.Unlock()
		snapshotFailuresTotal.Inc()
		return SnapshotInfo{}, fmt.Errorf("store: %w: on-demand levels are not persisted; snapshot refused", tlx.ErrExtended)
	}
	lsn := s.applied
	if lsn == s.snapLSN {
		s.mu.Unlock()
		return SnapshotInfo{LSN: lsn, UpToDate: true}, nil
	}
	var buf bytes.Buffer
	if _, err := s.ix.WriteTo(&buf); err != nil {
		s.mu.Unlock()
		snapshotFailuresTotal.Inc()
		return SnapshotInfo{}, err
	}
	// Rotate under the write lock: the new segment's base equals the
	// serialized LSN exactly, which is what lets pruning reason about
	// segment contents from file names alone.
	newSeg, err := createSegment(s.opts.Dir, lsn)
	if err != nil {
		s.mu.Unlock()
		snapshotFailuresTotal.Inc()
		return SnapshotInfo{}, err
	}
	old := s.seg
	s.seg = newSeg
	s.bytesSinceSnap, s.recsSinceSnap = 0, 0
	s.mu.Unlock()
	if old != nil {
		old.Close()
	}

	path, err := writeSnapshot(s.opts.Dir, lsn, buf.Bytes())
	if err != nil {
		// The rotation already happened; recovery simply replays through
		// the rotated segments from the previous snapshot.
		snapshotFailuresTotal.Inc()
		return SnapshotInfo{}, err
	}
	s.mu.Lock()
	s.snapLSN = lsn
	s.snapTime = time.Now()
	s.mu.Unlock()
	s.prune()
	took := time.Since(start)
	snapshotsTotal.Inc()
	snapshotSeconds.Observe(took.Seconds())
	snapshotBytes.Set(float64(buf.Len()))
	s.log.Info("store: snapshot taken", "lsn", lsn, "bytes", buf.Len(),
		"file", path, "tookMs", float64(took)/float64(time.Millisecond))
	return SnapshotInfo{
		LSN:    lsn,
		Bytes:  int64(buf.Len()),
		File:   path,
		TookMs: float64(took) / float64(time.Millisecond),
	}, nil
}

// prune deletes snapshots beyond the two newest and every WAL segment no
// retained snapshot could need. Failures are logged, not fatal: pruning
// reruns at the next snapshot.
func (s *Store) prune() {
	snaps, segs, err := scanDir(s.opts.Dir)
	if err != nil {
		s.log.Warn("store: prune scan failed", "err", err)
		return
	}
	if len(snaps) <= 2 {
		return
	}
	keepFrom := snaps[len(snaps)-2].lsn
	for _, sn := range snaps[:len(snaps)-2] {
		if err := os.Remove(sn.path); err != nil {
			s.log.Warn("store: prune failed", "path", sn.path, "err", err)
		}
	}
	// A segment with base b holds records b+1..b' only; once b' ≤ keepFrom
	// it cannot matter, and b' is the next segment's base.
	for i := 0; i+1 < len(segs); i++ {
		if segs[i+1].lsn <= keepFrom {
			if err := os.Remove(segs[i].path); err != nil {
				s.log.Warn("store: prune failed", "path", segs[i].path, "err", err)
			}
		}
	}
}

func (s *Store) autoSnapshotLoop() {
	defer s.wg.Done()
	// The interval timer fires unconditionally; Snapshot's up-to-date
	// early return makes ticks on a quiet store cost one lock acquisition.
	var tick <-chan time.Time
	if s.opts.SnapshotInterval > 0 {
		t := time.NewTicker(s.opts.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.done:
			return
		case <-s.trigger:
		case <-tick:
		}
		if _, err := s.Snapshot(); err != nil {
			s.log.Error("store: auto snapshot failed", "err", err)
		}
	}
}

// Status reports the store's durability state.
type Status struct {
	Dir               string  `json:"dir"`
	AppliedLSN        uint64  `json:"appliedLsn"`
	SnapshotLSN       uint64  `json:"snapshotLsn"`
	SnapshotAgeSec    float64 `json:"snapshotAgeSeconds"`
	WALRecords        int     `json:"walRecords"`
	WALBytes          int64   `json:"walBytes"`
	RecordsReplayed   int     `json:"recordsReplayed"`
	RecoveredFrom     string  `json:"recoveredFrom"`
	SnapshotFallbacks int     `json:"snapshotFallbacks"`
	ReadOnly          bool    `json:"readOnly"`
	// Backing reports how the recovered index is held: "mmap" when its
	// arrays alias the snapshot mapping, "heap" otherwise. MmapBytes is the
	// aliased byte count (0 for heap).
	Backing   string `json:"backing"`
	MmapBytes int64  `json:"mmapBytes"`
}

// Status returns a consistent view of the durability state.
func (s *Store) Status() Status {
	s.mu.RLock()
	defer s.mu.RUnlock()
	backing, mmapBytes := "heap", s.ix.MmapBytes()
	if mmapBytes > 0 {
		backing = "mmap"
	}
	return Status{
		Backing:           backing,
		MmapBytes:         mmapBytes,
		Dir:               s.opts.Dir,
		AppliedLSN:        s.applied,
		SnapshotLSN:       s.snapLSN,
		SnapshotAgeSec:    time.Since(s.snapTime).Seconds(),
		WALRecords:        int(s.applied - s.snapLSN),
		WALBytes:          s.bytesSinceSnap,
		RecordsReplayed:   s.replayed,
		RecoveredFrom:     s.recoveredFrom,
		SnapshotFallbacks: s.fallbacks,
		ReadOnly:          s.failed != nil,
	}
}

// Close stops the background snapshotter, takes a final snapshot (so a
// clean stop never needs WAL replay), and releases the WAL file.
func (s *Store) Close() error {
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
	var err error
	s.mu.RLock()
	needsSnap := s.failed == nil && !s.closed
	s.mu.RUnlock()
	if needsSnap {
		if _, serr := s.Snapshot(); serr != nil && !errors.Is(serr, tlx.ErrExtended) {
			err = serr
		}
	}
	s.mu.Lock()
	s.closed = true
	if s.seg != nil {
		if cerr := s.seg.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.seg = nil
	}
	// Release a snapshot mapping last: nothing touches the index after the
	// store is closed.
	if cerr := s.ix.Close(); cerr != nil && err == nil {
		err = cerr
	}
	s.mu.Unlock()
	return err
}

// kill simulates a crash for tests: the background snapshotter stops and
// the WAL file handle is dropped with no final snapshot, leaving the data
// directory exactly as fsync has it.
func (s *Store) kill() {
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
	s.mu.Lock()
	s.closed = true
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	s.mu.Unlock()
}
