package skyline

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func randPts(rng *rand.Rand, n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// naiveSkyband is the O(n²) reference: points dominated by < k others.
func naiveSkyband(pts [][]float64, k int) []int {
	var out []int
	for i := range pts {
		cnt := 0
		for j := range pts {
			if i != j && Dominates(pts[j], pts[i]) {
				cnt++
			}
		}
		if cnt < k {
			out = append(out, i)
		}
	}
	return out
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{0, 0}, true},
		{[]float64{1, 0}, []float64{0, 1}, false},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict attr
		{[]float64{1, 1}, []float64{1, 0}, true},
		{[]float64{0, 0}, []float64{1, 1}, false},
		{[]float64{0.5}, []float64{0.4}, true},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSkylineKnown(t *testing.T) {
	// The paper's hotel dataset (Figure 2a): skyline is r1, r2 (0-indexed 0, 1).
	hotels := [][]float64{
		{0.62, 0.76}, // VibesInn
		{0.90, 0.48}, // Artezen
		{0.73, 0.33}, // citizenM
		{0.26, 0.64}, // Yotel
		{0.30, 0.24}, // Royalton
	}
	if got := Skyline(hotels); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Skyline = %v, want [0 1]", got)
	}
	// 2-skyband adds citizenM (dominated only by r2) and Yotel (only by r1).
	if got := Skyband(hotels, 2); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("Skyband(2) = %v, want [0 1 2 3]", got)
	}
	// Royalton is dominated by r1, r2, r3: needs k >= 4.
	if got := Skyband(hotels, 4); len(got) != 5 {
		t.Errorf("Skyband(4) = %v, want all 5", got)
	}
}

func TestSkybandMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(120)
		d := 2 + r.Intn(4)
		k := 1 + r.Intn(5)
		pts := randPts(r, n, d)
		return reflect.DeepEqual(Skyband(pts, k), naiveSkyband(pts, k))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSkybandWithDuplicates(t *testing.T) {
	pts := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.6, 0.6}, {0.4, 0.4}}
	// Duplicates do not dominate each other; both are dominated by {0.6,0.6}.
	got := Skyband(pts, 1)
	if !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Skyline with duplicates = %v, want [2]", got)
	}
	got2 := Skyband(pts, 2)
	sort.Ints(got2)
	if !reflect.DeepEqual(got2, []int{0, 1, 2}) {
		t.Errorf("Skyband(2) = %v, want [0 1 2]", got2)
	}
}

func TestSkybandEdgeCases(t *testing.T) {
	if got := Skyband(nil, 3); len(got) != 0 {
		t.Errorf("empty input gave %v", got)
	}
	if got := Skyband([][]float64{{1, 2}}, 0); got != nil {
		t.Errorf("k=0 gave %v", got)
	}
	if got := Skyband([][]float64{{1, 2}}, 1); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("singleton gave %v", got)
	}
}

func TestLayersPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(80)
		pts := randPts(rng, n, 2+rng.Intn(3))
		layers := Layers(pts)
		seen := make(map[int]int)
		for li, layer := range layers {
			if len(layer) == 0 {
				t.Fatal("empty layer emitted")
			}
			for _, idx := range layer {
				if prev, dup := seen[idx]; dup {
					t.Fatalf("point %d in layers %d and %d", idx, prev, li)
				}
				seen[idx] = li
			}
		}
		if len(seen) != n {
			t.Fatalf("layers cover %d of %d points", len(seen), n)
		}
		// Layer property: nothing in layer li is dominated by a point of a
		// layer >= li, and everything in layer li>0 is dominated by some
		// point in layer li-1.
		for li, layer := range layers {
			for _, idx := range layer {
				for lj := li; lj < len(layers); lj++ {
					for _, jdx := range layers[lj] {
						if Dominates(pts[jdx], pts[idx]) {
							t.Fatalf("point %d (layer %d) dominated by %d (layer %d)", idx, li, jdx, lj)
						}
					}
				}
				if li > 0 {
					dominated := false
					for _, jdx := range layers[li-1] {
						if Dominates(pts[jdx], pts[idx]) {
							dominated = true
							break
						}
					}
					if !dominated {
						t.Fatalf("point %d in layer %d has no dominator in layer %d", idx, li, li-1)
					}
				}
			}
		}
	}
}

func TestLayerOrderIsPermutationPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pts := randPts(rng, 60, 3)
	order := LayerOrder(pts)
	if len(order) != 60 {
		t.Fatalf("order length %d", len(order))
	}
	seen := map[int]bool{}
	for _, idx := range order {
		if seen[idx] {
			t.Fatalf("duplicate %d in order", idx)
		}
		seen[idx] = true
	}
	// The first block must be exactly the skyline.
	sky := Skyline(pts)
	first := append([]int(nil), order[:len(sky)]...)
	sort.Ints(first)
	if !reflect.DeepEqual(first, sky) {
		t.Fatalf("first layer block %v != skyline %v", first, sky)
	}
}

func TestDominatorCount(t *testing.T) {
	pts := [][]float64{{3, 3}, {2, 2}, {1, 1}, {2.5, 1.5}}
	got := DominatorCount(pts)
	want := []int{0, 1, 3, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DominatorCount = %v, want %v", got, want)
	}
}

func TestSkybandMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := randPts(rng, 100, 3)
	prev := 0
	for k := 1; k <= 6; k++ {
		cur := len(Skyband(pts, k))
		if cur < prev {
			t.Fatalf("skyband size decreased: k=%d size=%d prev=%d", k, cur, prev)
		}
		prev = cur
	}
}

func BenchmarkSkyband(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := randPts(rng, 20000, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Skyband(pts, 10)
	}
}
