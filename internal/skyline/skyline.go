// Package skyline implements coordinate-wise dominance, skyline, k-skyband,
// and skyline-layer computation for max-is-better option datasets. The
// τ-LevelIndex builders use the τ-skyband as their option filter (§5.2
// "Option filtering") and skyline layers as the IBA insertion order
// ("Insertion ordering").
package skyline

import "sort"

// Dominates reports whether a dominates b: a ≥ b on every attribute and
// a > b on at least one (higher values are better).
func Dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			strict = true
		}
	}
	return strict
}

// sumOrder returns point indices sorted by descending attribute sum (ties
// broken by index for determinism). Any dominator of a point precedes it in
// this order.
func sumOrder(pts [][]float64) []int {
	order := make([]int, len(pts))
	sums := make([]float64, len(pts))
	for i, p := range pts {
		order[i] = i
		s := 0.0
		for _, v := range p {
			s += v
		}
		sums[i] = s
	}
	sort.Slice(order, func(x, y int) bool {
		if sums[order[x]] != sums[order[y]] {
			return sums[order[x]] > sums[order[y]]
		}
		return order[x] < order[y]
	})
	return order
}

// Skyline returns the indices of the maximal (non-dominated) points, in
// ascending index order. Sort-filter BNL: points are scanned in descending
// sum order, so only already-accepted points can dominate a new one.
func Skyline(pts [][]float64) []int {
	return Skyband(pts, 1)
}

// Skyband returns the indices of points dominated by fewer than k others,
// in ascending index order. A point is in the k-skyband iff it is dominated
// by fewer than k points of the k-skyband itself, so counting dominators
// within the accepted window is exact.
func Skyband(pts [][]float64, k int) []int {
	if k <= 0 {
		return nil
	}
	order := sumOrder(pts)
	window := make([]int, 0, 64)
	for _, i := range order {
		cnt := 0
		for _, j := range window {
			if Dominates(pts[j], pts[i]) {
				cnt++
				if cnt >= k {
					break
				}
			}
		}
		if cnt < k {
			window = append(window, i)
		}
	}
	sort.Ints(window)
	return window
}

// DominatorCount returns, for each point, the number of points in pts that
// dominate it. Quadratic; intended for the small filtered sets used during
// index construction and for tests.
func DominatorCount(pts [][]float64) []int {
	counts := make([]int, len(pts))
	for i := range pts {
		for j := range pts {
			if i != j && Dominates(pts[j], pts[i]) {
				counts[i]++
			}
		}
	}
	return counts
}

// Layers peels the dataset into skyline layers: layer 0 is the skyline,
// layer 1 the skyline of the remainder, and so on. Every point appears in
// exactly one layer. This is the IBA insertion order of §5.2.
func Layers(pts [][]float64) [][]int {
	remaining := make([]int, len(pts))
	for i := range remaining {
		remaining[i] = i
	}
	var layers [][]int
	for len(remaining) > 0 {
		sub := make([][]float64, len(remaining))
		for i, idx := range remaining {
			sub[i] = pts[idx]
		}
		sky := Skyband(sub, 1)
		layer := make([]int, len(sky))
		inLayer := make(map[int]bool, len(sky))
		for i, s := range sky {
			layer[i] = remaining[s]
			inLayer[remaining[s]] = true
		}
		layers = append(layers, layer)
		next := remaining[:0]
		for _, idx := range remaining {
			if !inLayer[idx] {
				next = append(next, idx)
			}
		}
		remaining = next
	}
	return layers
}

// LayerOrder flattens Layers into a single insertion order: all of layer 0,
// then layer 1, etc. — the ordering that avoids creating redundant cells in
// the insertion-based builder.
func LayerOrder(pts [][]float64) []int {
	var order []int
	for _, layer := range Layers(pts) {
		order = append(order, layer...)
	}
	return order
}
