// Package clitest builds the command-line binaries and exercises their
// primary flows end to end: generate → build → query → plot.
package clitest

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one command into dir and returns the binary path.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "tlevelindex/cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest -> repo root
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func runExpectFail(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("%s %s: expected failure\n%s", filepath.Base(bin), strings.Join(args, " "), out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI pipeline skipped in short mode")
	}
	dir := t.TempDir()
	lvdata := buildCmd(t, dir, "lvdata")
	lvbuild := buildCmd(t, dir, "lvbuild")
	lvquery := buildCmd(t, dir, "lvquery")
	lvplot := buildCmd(t, dir, "lvplot")

	dataPath := filepath.Join(dir, "data.txt")
	run(t, lvdata, "-dist", "IND", "-n", "300", "-d", "2", "-seed", "3", "-out", dataPath)
	if _, err := os.Stat(dataPath); err != nil {
		t.Fatalf("dataset not written: %v", err)
	}

	idxPath := filepath.Join(dir, "data.idx")
	out := run(t, lvbuild, "-in", dataPath, "-tau", "3", "-algo", "PBA+", "-out", idxPath)
	for _, want := range []string{"algorithm", "PBA+", "cells", "index written"} {
		if !strings.Contains(out, want) {
			t.Errorf("lvbuild output missing %q:\n%s", want, out)
		}
	}
	if fi, err := os.Stat(idxPath); err != nil || fi.Size() == 0 {
		t.Fatalf("index not written: %v", err)
	}

	out = run(t, lvquery, "-in", dataPath, "-tau", "3", "-query", "topk", "-k", "3", "-w", "0.4,0.6")
	if !strings.Contains(out, "top-3 at") {
		t.Errorf("lvquery topk output:\n%s", out)
	}
	out = run(t, lvquery, "-in", dataPath, "-tau", "3", "-query", "kspr", "-k", "2", "-focal", "0")
	if !strings.Contains(out, "kSPR(2, 0)") {
		t.Errorf("lvquery kspr output:\n%s", out)
	}
	out = run(t, lvquery, "-in", dataPath, "-tau", "3", "-query", "utk", "-k", "2", "-lo", "0.3", "-hi", "0.4")
	if !strings.Contains(out, "UTK(2,") {
		t.Errorf("lvquery utk output:\n%s", out)
	}
	out = run(t, lvquery, "-in", dataPath, "-tau", "3", "-query", "oru", "-k", "2", "-w", "0.3,0.7", "-m", "4")
	if !strings.Contains(out, "ORU(2,") {
		t.Errorf("lvquery oru output:\n%s", out)
	}
	out = run(t, lvquery, "-in", dataPath, "-tau", "3", "-query", "maxrank", "-focal", "5")
	if !strings.Contains(out, "MaxRank(5)") {
		t.Errorf("lvquery maxrank output:\n%s", out)
	}

	out = run(t, lvplot, "-in", dataPath, "-tau", "3", "-width", "40")
	if !strings.Contains(out, "rank 1") || !strings.Contains(out, "legend:") {
		t.Errorf("lvplot output:\n%s", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI error tests skipped in short mode")
	}
	dir := t.TempDir()
	lvdata := buildCmd(t, dir, "lvdata")
	lvbuild := buildCmd(t, dir, "lvbuild")
	lvquery := buildCmd(t, dir, "lvquery")

	if out := runExpectFail(t, lvdata, "-dist", "NOPE"); !strings.Contains(out, "unknown distribution") {
		t.Errorf("lvdata error output: %s", out)
	}
	if out := runExpectFail(t, lvbuild); !strings.Contains(out, "-in is required") {
		t.Errorf("lvbuild error output: %s", out)
	}
	if out := runExpectFail(t, lvbuild, "-in", "/nonexistent", "-algo", "NOPE"); !strings.Contains(out, "unknown algorithm") {
		t.Errorf("lvbuild bad algo output: %s", out)
	}
	if out := runExpectFail(t, lvquery, "-in", "/nonexistent"); !strings.Contains(out, "no such file") {
		t.Errorf("lvquery missing file output: %s", out)
	}

	// lvquery with an unknown query on real data.
	dataPath := filepath.Join(dir, "d.txt")
	run(t, lvdata, "-dist", "IND", "-n", "50", "-d", "2", "-out", dataPath)
	if out := runExpectFail(t, lvquery, "-in", dataPath, "-query", "nope"); !strings.Contains(out, "unknown query") {
		t.Errorf("lvquery unknown query output: %s", out)
	}
}
