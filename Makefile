# Development targets; `make ci` is the full gate (vet, format check,
# build, race-enabled tests) and is what CI should run.

GO ?= go

.PHONY: ci vet fmt-check build test race bench bench-smoke serve-bench recovery-bench ingest-bench lvbench fuzz-smoke obs-smoke

# The plain (non-race) test pass is part of the gate because the
# allocation pins skip themselves under -race, where sync.Pool drops puts
# at random.
ci: vet fmt-check build test race fuzz-smoke bench-smoke obs-smoke

vet:
	$(GO) vet ./...

# gofmt -l prints nonconforming files; fail loudly when there are any.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run xxx .

# One-iteration pass over the predicate-layer microbenchmarks (LP kernel,
# region predicates, projection): catches compile breakage and allocation
# regressions in seconds, and archives the numbers as BENCH_lp.json.
# The query-side benchmarks then run against the committed BENCH_query.json
# baseline: a >2x ns/op regression on any of them fails the build, as does
# a baseline benchmark missing from the run (set BENCH_NO_GATE=1 to
# downgrade the gate to a warning on slow machines). 2000 iterations is
# the point where the sub-microsecond rows reach steady state (caches and
# branch predictors warm) while the ORU row still finishes in ~1s; at
# 100x the batch-vs-single top-k comparison was measuring cold-start
# noise, not the traversal sharing it gates. The alternation is
# exact-anchored on purpose: several names are prefixes of others
# (BenchmarkTopK/BenchmarkTopKBatch, BenchmarkKSPR/BenchmarkKSPRBatch,
# BenchmarkLocate/BenchmarkLocateTopK), so every addition must be spelled
# out rather than relying on prefix matching.
bench-smoke: serve-bench recovery-bench ingest-bench
	$(GO) test -bench . -benchtime 1x -benchmem -run xxx \
		./internal/lp ./internal/geom | $(GO) run ./cmd/benchjson > BENCH_lp.json
	@echo "wrote BENCH_lp.json"
	$(GO) test -bench '^(BenchmarkKSPR|BenchmarkUTK|BenchmarkORU|BenchmarkTopK|BenchmarkTopKBatch|BenchmarkTopKBatchUniform|BenchmarkKSPRBatch|BenchmarkLocate|BenchmarkLocateTopK)$$' \
		-benchtime 2000x -benchmem -run xxx ./internal/index \
		| $(GO) run ./cmd/benchjson -baseline BENCH_query.json -out BENCH_query.json
	@echo "wrote BENCH_query.json"

# Serve-layer throughput against the committed BENCH_serve.json baseline:
# the cached/uncached pairs quantify the answer cache (the UTK hit path
# runs several times the uncached qps), the parallel pair quantifies the
# replica tier, the batch row (BenchmarkServeQueryBatchTopK, per item)
# quantifies the /v1/query/batch envelope, and the cache-package hit
# benchmark pins the zero-alloc lookup. Same 2x ns/op gate and
# BENCH_NO_GATE escape as the query gate.
serve-bench:
	$(GO) test -bench '^(BenchmarkServe|BenchmarkGetHit)' -benchtime 100x \
		-benchmem -run xxx ./internal/serve ./internal/cache \
		| $(GO) run ./cmd/benchjson -baseline BENCH_serve.json -out BENCH_serve.json
	@echo "wrote BENCH_serve.json"

# Snapshot cold-start latency — the dominant term of a restart or a
# replica bootstrap — heap load vs zero-copy mmap load across index
# sizes, against the committed BENCH_recovery.json baseline. Same 2x
# ns/op gate and BENCH_NO_GATE escape as the query gate. (The mmap load
# path itself runs under -race via the regular `race` target.)
recovery-bench:
	$(GO) test -bench '^BenchmarkColdStart$$' -benchtime 50x -benchmem -run xxx \
		./internal/index | $(GO) run ./cmd/benchjson -baseline BENCH_recovery.json -out BENCH_recovery.json
	@echo "wrote BENCH_recovery.json"

# Durable write throughput against the committed BENCH_ingest.json
# baseline: single-record inserts (the 1.0 fsyncs/rec reference), the
# explicit batch path (the ≥3x records/sec claim of DESIGN.md §20 rides on
# BenchmarkIngestBatch/batch=64 staying well under Single's ns/op), and
# ≥8 concurrent writers coalescing through group commit (fsyncs/rec must
# sit well under 1; the custom column lands in the JSON's "extra" map).
# 64 fixed iterations: realistic never-dominated arrivals cost hundreds of
# ms each on the single path, and a fixed count keeps skyband growth
# identical between baseline and fresh runs. Same 2x ns/op gate — with the
# missing-baseline-name failure rule — and BENCH_NO_GATE escape as the
# query gate.
ingest-bench:
	$(GO) test -bench '^(BenchmarkIngestSingle|BenchmarkIngestBatch|BenchmarkIngestGroupCommit)$$' \
		-benchtime 64x -timeout 1800s -run xxx ./internal/store \
		| $(GO) run ./cmd/benchjson -baseline BENCH_ingest.json -out BENCH_ingest.json
	@echo "wrote BENCH_ingest.json"

# Observability smoke: scrape /v1/metrics through httptest, assert both
# expositions parse — classic 0.0.4 (which must stay exemplar-free) and
# the negotiated OpenMetrics form (exemplars and # EOF included) — with
# every promised metric family present, and lint each registered metric
# name against the Prometheus naming convention. The flight-recorder endpoints are scraped under real
# traffic — /v1/admin/trace must answer well-formed JSON with a non-empty
# recorder and /v1/admin/hotcells the sampled hot-cell sketch — and the
# zero-allocation guards for the disabled tracer and disabled recorder
# paths ride along.
obs-smoke:
	$(GO) test ./internal/serve -run 'TestMetricsEndpoint|TestMetricNamesLint' -count 1
	$(GO) test ./internal/serve -count 1 \
		-run 'TestTraceAdminSmoke|TestHotCellsAdminSmoke|TestBatchTraceTree|TestDispatchAllocsRecorderOff'
	$(GO) test . -run 'TestNoopTracerZeroAlloc' -count 1

# Short fuzz runs over the parsers that face crash-damaged or hostile
# bytes: the WAL segment reader, the index deserializer (stream and
# zero-copy byte readers in lockstep), the snapshot-shipping stream
# decoder a follower trusts with network data, and the batch-query and
# batch-insert HTTP envelope decoders that take arbitrary client JSON.
fuzz-smoke:
	$(GO) test ./internal/store -run xxx -fuzz FuzzWALReplay -fuzztime 10s
	$(GO) test ./internal/index -run xxx -fuzz FuzzReadIndex -fuzztime 10s
	$(GO) test ./internal/store -run xxx -fuzz FuzzShipRead -fuzztime 10s
	$(GO) test ./internal/serve -run xxx -fuzz FuzzBatchEnvelope -fuzztime 10s
	$(GO) test ./internal/serve -run xxx -fuzz FuzzInsertBatchEnvelope -fuzztime 10s

lvbench:
	$(GO) run ./cmd/lvbench -exp all -scale small
