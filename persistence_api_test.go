package tlevelindex

import (
	"bytes"
	"testing"
)

// TestInsertIDStableAcrossSerialization: an index loaded from WriteTo bytes
// must hand later inserts the same external ids as the index it was saved
// from. The hotels dataset makes this sharp: hotel 4 is filtered out of the
// τ-skyband, so a loader that primed the id counter from the surviving pool
// (max OrigID + 1 = 4) instead of the serialized input cardinality would
// reuse dataset id 4 — the X2 format carries the cardinality to prevent
// exactly that. The durable store's WAL replay relies on this determinism.
func TestInsertIDStableAcrossSerialization(t *testing.T) {
	ix := buildHotels(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := ix.Insert([]float64{0.95, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	gotID, err := loaded.Insert([]float64{0.95, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if gotID != wantID || gotID != 5 {
		t.Fatalf("insert id after reload = %d, direct = %d, want 5", gotID, wantID)
	}
	// The two indexes must remain byte-identical after the insert — the
	// crash-recovery invariant in miniature.
	var a, b bytes.Buffer
	if _, err := ix.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("serialized states diverge after identical inserts")
	}
}
