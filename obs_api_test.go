package tlevelindex_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	tlx "tlevelindex"
)

var obsHotels = [][]float64{
	{0.62, 0.76}, {0.90, 0.48}, {0.73, 0.33}, {0.26, 0.64}, {0.30, 0.24},
	{0.81, 0.59}, {0.45, 0.88}, {0.12, 0.93}, {0.67, 0.51}, {0.38, 0.42},
}

// TestContextCancelPartialStats pins the documented cancellation guarantee:
// an abandoned traversal returns the context's error together with a
// non-nil result whose Stats report the work done before the abandonment.
func TestContextCancelPartialStats(t *testing.T) {
	ix, err := tlx.Build(obsHotels, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := ix.TopKContext(ctx, []float64{0.5, 0.5}, 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TopKContext err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("TopKContext returned a nil result on cancellation")
	}
	if res.Stats.VisitedCells < 1 {
		t.Errorf("TopKContext partial stats: VisitedCells = %d, want >= 1", res.Stats.VisitedCells)
	}

	kres, err := ix.KSPRContext(ctx, 3, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("KSPRContext err = %v, want context.Canceled", err)
	}
	if kres == nil || kres.Stats.VisitedCells < 1 {
		t.Errorf("KSPRContext partial result = %+v", kres)
	}
	if len(kres.Regions) != 0 {
		t.Errorf("KSPRContext on cancellation leaked %d regions", len(kres.Regions))
	}

	mres, err := ix.MaxRankContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MaxRankContext err = %v, want context.Canceled", err)
	}
	if mres == nil || mres.Stats.VisitedCells < 1 {
		t.Errorf("MaxRankContext partial result = %+v", mres)
	}

	// Validation failures still return a nil result: no traversal ran.
	if res, err := ix.TopKContext(ctx, []float64{0.5, 0.5}, 0); err == nil || res != nil {
		t.Errorf("invalid k: res=%v err=%v, want nil result and an error", res, err)
	}
}

// spanCollector is a thread-safe Tracer for tests.
type spanCollector struct {
	mu    sync.Mutex
	spans []tlx.Span
}

func (c *spanCollector) Span(s tlx.Span) {
	c.mu.Lock()
	c.spans = append(c.spans, s)
	c.mu.Unlock()
}

func (c *spanCollector) names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.spans))
	for i, s := range c.spans {
		out[i] = s.Name
	}
	return out
}

// TestQuerySpans: an attached tracer receives one completed span per
// context query, carrying the traversal measurements; detaching stops the
// flow immediately.
func TestQuerySpans(t *testing.T) {
	ix, err := tlx.Build(obsHotels, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := &spanCollector{}
	ix.SetTracer(tr)

	ctx := context.Background()
	if _, err := ix.TopKContext(ctx, []float64{0.5, 0.5}, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.KSPRContext(ctx, 2, 0); err != nil {
		t.Fatal(err)
	}
	names := tr.names()
	if len(names) != 2 || names[0] != "query.topk" || names[1] != "query.kspr" {
		t.Fatalf("span names = %v, want [query.topk query.kspr]", names)
	}
	tr.mu.Lock()
	top := tr.spans[0]
	tr.mu.Unlock()
	if v, ok := top.Get("visitedCells"); !ok || v < 1 {
		t.Errorf("topk span visitedCells = %v (ok=%v), want >= 1", v, ok)
	}
	if top.Duration <= 0 {
		t.Errorf("topk span duration = %v, want > 0", top.Duration)
	}

	ix.SetTracer(nil)
	if _, err := ix.TopKContext(ctx, []float64{0.5, 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.names()); got != 2 {
		t.Errorf("detached tracer still received spans: %d total", got)
	}
}

// TestBuildTracerAndProgress: WithTracer sees the build phases and
// per-level spans; WithProgress reports each level with a cells/sec rate.
func TestBuildTracerAndProgress(t *testing.T) {
	tr := &spanCollector{}
	var reports []tlx.BuildProgress
	ix, err := tlx.Build(obsHotels, 4,
		tlx.WithTracer(tr),
		tlx.WithProgress(func(p tlx.BuildProgress) { reports = append(reports, p) }))
	if err != nil {
		t.Fatal(err)
	}
	names := tr.names()
	var sawFilter, sawBuild, sawLevel, sawCompact bool
	for _, n := range names {
		switch n {
		case "build.filter":
			sawFilter = true
		case "build.PBA+":
			sawBuild = true
		case "build.level":
			sawLevel = true
		case "build.compact":
			sawCompact = true
		}
	}
	if !sawFilter || !sawBuild || !sawLevel || !sawCompact {
		t.Errorf("build spans = %v, want filter/PBA+/level/compact all present", names)
	}
	if len(reports) != ix.Tau() {
		t.Errorf("progress reports = %d, want one per level (%d)", len(reports), ix.Tau())
	}
	for _, p := range reports {
		if p.Algorithm != "PBA+" || p.Level < 1 || p.Level > p.MaxLevel || p.LevelCells < 1 {
			t.Errorf("bad progress report %+v", p)
		}
	}
}
