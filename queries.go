package tlevelindex

import (
	"errors"
	"fmt"
	"math/rand"

	"tlevelindex/internal/geom"
	"tlevelindex/internal/index"
)

// Halfspace is the closed set {x : A·x ≤ B} in reduced preference
// coordinates (see the package docs for the coordinate convention).
type Halfspace struct {
	A []float64
	B float64
}

// Region is a convex piece of preference space: the intersection of its
// halfspaces (the simplex bounds are included).
type Region struct {
	Halfspaces []Halfspace
}

// Feasible reports whether the region has nonempty interior-or-boundary in
// the weight simplex — whether any valid weight vector satisfies all its
// halfspaces. Regions returned by queries are always feasible; the helper
// is for regions assembled or tightened by the caller. It runs one
// feasibility LP (a region with no halfspaces is the whole simplex).
func (r Region) Feasible() bool {
	if len(r.Halfspaces) == 0 {
		return true
	}
	reg := geom.NewRegion(len(r.Halfspaces[0].A))
	for _, h := range r.Halfspaces {
		reg.Add(geom.Halfspace{A: h.A, B: h.B})
	}
	return reg.Feasible()
}

// Contains reports whether the reduced point x lies in the region.
func (r Region) Contains(x []float64) bool {
	for _, h := range r.Halfspaces {
		dot := -h.B
		for i, a := range h.A {
			dot += a * x[i]
		}
		if dot > 1e-9 {
			return false
		}
	}
	return true
}

func exportRegion(reg *geom.Region) Region {
	out := Region{Halfspaces: make([]Halfspace, 0, len(reg.HS))}
	for _, h := range reg.HS {
		out.Halfspaces = append(out.Halfspaces, Halfspace{
			A: append([]float64(nil), h.A...),
			B: h.B,
		})
	}
	return out
}

// QueryStats reports traversal effort — the cells visited during the index
// walk and the linear programs solved on the way (the paper's Table 5
// metrics). Every query type exports it.
type QueryStats struct {
	VisitedCells int
	LPCalls      int
}

func exportStats(s index.QueryStats) QueryStats {
	return QueryStats{VisitedCells: s.VisitedCells, LPCalls: s.LPCalls}
}

// KSPRResult answers a k-shortlist preference region query (Problem 2).
type KSPRResult struct {
	// Regions are the preference-space pieces (reduced coordinates) in
	// which the focal option ranks top-k; their union is the full answer.
	Regions []Region
	Stats   QueryStats
}

// KSPR returns the regions of preference space in which the focal option
// (a dataset index) ranks top-k. An option outside the k-skyband yields an
// empty result: it ranks below k everywhere.
func (ix *Index) KSPR(k, focal int) (*KSPRResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if focal < 0 {
		return nil, fmt.Errorf("tlevelindex: invalid focal option %d", focal)
	}
	fid := ix.filteredID(focal)
	if fid < 0 && k > ix.inner.MaxMaterializedLevel() {
		// The option may enter deeper levels; extending refreshes the pool.
		ix.inner.EnsureLevels(k)
		ix.idMap.Store(nil)
		fid = ix.filteredID(focal)
	}
	if fid < 0 {
		return &KSPRResult{}, nil
	}
	res := ix.inner.KSPR(k, fid)
	out := &KSPRResult{Stats: exportStats(res.Stats)}
	for _, id := range res.Cells {
		out.Regions = append(out.Regions, exportRegion(ix.inner.Region(id)))
	}
	return out, nil
}

// UTKPartition is one piece of the query region with a fixed top-k set.
type UTKPartition struct {
	TopK   []int // dataset indices, as a set
	Region Region
}

// UTKResult answers an uncertain top-k query (Problem 3).
type UTKResult struct {
	// Options are all dataset indices that rank top-k for some weight in
	// the query region, ascending.
	Options []int
	// Partitions subdivide the query region by top-k result set.
	Partitions []UTKPartition
	Stats      QueryStats
}

// UTK reports every option that can rank top-k for a weight inside the box
// [lo, hi] in reduced preference coordinates, along with the partitioning
// of the box by top-k result set.
func (ix *Index) UTK(k int, lo, hi []float64) (*UTKResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if len(lo) != ix.inner.RDim() || len(hi) != ix.inner.RDim() {
		return nil, fmt.Errorf("tlevelindex: query box must have %d reduced coordinates", ix.inner.RDim())
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return nil, errors.New("tlevelindex: box lo exceeds hi")
		}
	}
	res := ix.inner.UTK(k, geom.NewBox(lo, hi))
	out := &UTKResult{Stats: exportStats(res.Stats)}
	for _, o := range res.Options {
		out.Options = append(out.Options, ix.origID(o))
	}
	for _, p := range res.Partitions {
		part := UTKPartition{Region: exportRegion(ix.inner.Region(p.Cell))}
		for _, o := range p.TopK {
			part.TopK = append(part.TopK, ix.origID(o))
		}
		out.Partitions = append(out.Partitions, part)
	}
	return out, nil
}

// ORUResult answers an output-size specified utility-based query
// (Problem 4).
type ORUResult struct {
	// Options are the m reported dataset indices in ascending expansion
	// distance.
	Options []int
	// Rho is the minimum expansion radius around the query weight whose
	// top-k results cover all m options.
	Rho   float64
	Stats QueryStats
}

// ORU reports m options, each of which ranks top-k for at least one weight
// within the minimum expansion distance ρ of w (a full weight vector).
func (ix *Index) ORU(k int, w []float64, m int) (*ORUResult, error) {
	if k < 1 || m < 1 {
		return nil, errors.New("tlevelindex: k and m must be >= 1")
	}
	x, err := ix.reduce(w)
	if err != nil {
		return nil, err
	}
	res := ix.inner.ORU(k, x, m)
	out := &ORUResult{Rho: res.Rho, Stats: exportStats(res.Stats)}
	for _, o := range res.Options {
		out.Options = append(out.Options, ix.origID(o))
	}
	return out, nil
}

// TopK returns the k best dataset indices for the full weight vector w, in
// rank order. With k ≤ τ this is a pure index walk; deeper k extends the
// index on demand.
func (ix *Index) TopK(w []float64, k int) ([]int, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	x, err := ix.reduce(w)
	if err != nil {
		return nil, err
	}
	res, _ := ix.inner.TopK(x, k)
	out := make([]int, 0, len(res))
	for _, o := range res {
		out = append(out, ix.origID(o))
	}
	return out, nil
}

// MaxRank returns the best (smallest) rank the option attains anywhere in
// preference space, or -1 when the option never ranks within τ.
func (ix *Index) MaxRank(opt int) (int, error) {
	if opt < 0 {
		return 0, fmt.Errorf("tlevelindex: invalid option %d", opt)
	}
	fid := ix.filteredID(opt)
	if fid < 0 {
		return -1, nil
	}
	rank, _ := ix.inner.MaxRank(fid)
	return rank, nil
}

// WhyNotResult explains an option's absence from a user's top-k.
type WhyNotResult struct {
	// Rank is the option's rank at the query weights (1-based, within the
	// indexed option pool).
	Rank int
	// InTopK reports whether the option already ranks top-k there.
	InTopK bool
	// MinShift is the smallest preference perturbation (Euclidean, reduced
	// coordinates) after which the option enters the top-k; 0 when InTopK,
	// -1 when the option cannot rank top-k anywhere.
	MinShift float64
	// SuggestedW is the nearest full weight vector under which the option
	// ranks top-k (nil when none exists). It answers the "how should the
	// user change their preferences" half of the why-not query.
	SuggestedW []float64
	// Stats reports the traversal effort of the underlying kSPR walk plus
	// the projection LPs.
	Stats QueryStats
}

// WhyNot explains why the option is or is not among the user's top-k and
// how far the weights must move to change that.
func (ix *Index) WhyNot(opt int, w []float64, k int) (*WhyNotResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	x, err := ix.reduce(w)
	if err != nil {
		return nil, err
	}
	fid := ix.filteredID(opt)
	if fid < 0 {
		return &WhyNotResult{Rank: -1, MinShift: -1}, nil
	}
	res := ix.inner.WhyNot(fid, x, k)
	out := &WhyNotResult{Rank: res.RankAtW, InTopK: res.InTopK, MinShift: res.NearestDist,
		Stats: exportStats(res.Stats)}
	if res.NearestPoint != nil {
		out.SuggestedW = geom.Lift(res.NearestPoint)
	}
	return out, nil
}

// Interval is a segment of the 1-dimensional reduced preference space of a
// 2-attribute dataset.
type Interval struct {
	Lo, Hi float64
}

// MonoRTopK answers the monochromatic reverse top-k query for 2-attribute
// datasets: the maximal segments of the first weight w[1] in which the
// focal option ranks top-k (merged and sorted). It errors for d != 2; use
// KSPR for general dimensionalities.
func (ix *Index) MonoRTopK(k, focal int) ([]Interval, error) {
	if ix.Dim() != 2 {
		return nil, errors.New("tlevelindex: MonoRTopK requires 2-attribute options")
	}
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	fid := ix.filteredID(focal)
	if fid < 0 {
		return nil, nil
	}
	segs, _ := ix.inner.MonoRTopK(k, fid)
	out := make([]Interval, len(segs))
	for i, s := range segs {
		out[i] = Interval{Lo: s.Lo, Hi: s.Hi}
	}
	return out, nil
}

// MarketShare returns the fraction of preference space (by volume) in which
// the focal option ranks top-k — the provider-side competitiveness measure
// behind the paper's motivating scenarios. The result is in [0, 1]: exact
// for 2- and 3-attribute datasets, Monte-Carlo estimated (with the given
// deterministic seed) above that.
func (ix *Index) MarketShare(focal, k int) (float64, error) {
	if k < 1 {
		return 0, errors.New("tlevelindex: k must be >= 1")
	}
	if focal < 0 {
		return 0, fmt.Errorf("tlevelindex: invalid focal option %d", focal)
	}
	fid := ix.filteredID(focal)
	if fid < 0 {
		return 0, nil
	}
	res := ix.inner.KSPR(k, fid)
	rng := rand.New(rand.NewSource(1))
	total := 0.0
	for _, id := range res.Cells {
		total += ix.inner.Region(id).Volume(20000, rng.Float64)
	}
	share := total / geom.SimplexVolume(ix.inner.RDim())
	if share > 1 {
		share = 1 // Monte-Carlo noise can overshoot marginally
	}
	return share, nil
}

// ReverseTopK answers the bichromatic reverse top-k query of type DD
// (§2.2): given a discrete population of user weight vectors, return the
// indices of the users whose top-k result contains the focal option. The
// kSPR regions are computed once; each user is then a constant-time
// point-membership test — the acceleration the paper's related-work
// discussion promises for DD-type queries.
func (ix *Index) ReverseTopK(k, focal int, users [][]float64) ([]int, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	res, err := ix.KSPR(k, focal)
	if err != nil {
		return nil, err
	}
	var out []int
	for ui, w := range users {
		x, err := ix.reduce(w)
		if err != nil {
			return nil, fmt.Errorf("tlevelindex: user %d: %w", ui, err)
		}
		for _, r := range res.Regions {
			if r.Contains(x) {
				out = append(out, ui)
				break
			}
		}
	}
	return out, nil
}
