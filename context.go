package tlevelindex

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"tlevelindex/internal/geom"
	"tlevelindex/internal/obs"
)

// This file holds the context-aware query variants. Each one behaves like
// its plain counterpart with two differences:
//
//   - Cancellation: the traversal polls ctx between cell visits and
//     abandons the query with the context's error, so a slow region walk
//     cannot outlive its HTTP request or caller deadline.
//   - Strict depth: when k exceeds MaxMaterializedLevel and the index holds
//     no full dataset, the variant fails fast with ErrNeedsFullData instead
//     of extending best-effort over the filtered pool like the plain
//     methods do.
//
// Partial stats on cancellation: when a traversal is abandoned mid-walk,
// every variant returns the context's error together with a non-nil result
// whose Stats field reports the QueryStats accumulated before the
// abandonment (the answer fields themselves are incomplete and must not be
// interpreted). Validation failures — bad weights, bad k, ErrNeedsFullData —
// still return a nil result: no traversal ran, so there are no stats.
//
// Variants whose depth stays within the materialized levels are pure
// lookups and safe to call concurrently from many goroutines.

// querySpan bundles the per-query tracing state. With no tracer attached
// (the default) and an untraced context, starting and finishing it performs
// one atomic load, one context lookup and two nil checks and allocates
// nothing.
type querySpan struct {
	tr Tracer
	sp obs.Span
	wf uint64 // witness fast-path counter baseline
}

// startQuerySpan begins the traversal span for one query. The span joins the
// request trace carried in ctx when there is one (parented under the
// caller's span, delivered to the context's tracer when the index has none
// of its own — this covers replica copies and follower index swaps, which
// never see SetTracer); otherwise it behaves like the pre-tracing span: a
// standalone span to the index tracer, or nothing at all.
func (ix *Index) startQuerySpan(ctx context.Context, name string) querySpan {
	q := querySpan{tr: ix.loadTracer()}
	sc, traced := obs.SpanContextFrom(ctx)
	if q.tr == nil && traced {
		q.tr = sc.Tracer
	}
	if q.tr == nil {
		return q
	}
	if traced {
		q.sp = obs.StartSpanIn(sc, name)
	} else {
		q.sp = obs.StartSpan(name)
	}
	s, e, c := geom.WitnessStats()
	q.wf = s + e + c
	return q
}

// finish stamps traversal stats onto the span and delivers it. The
// witnessFastPaths attribute is the delta of the process-wide fast-path
// counters over the query, so under concurrent queries it is an
// approximation that attributes overlapping work to whichever span closes.
func (q *querySpan) finish(st QueryStats, err error) {
	if q.tr == nil {
		return
	}
	s, e, c := geom.WitnessStats()
	q.sp.Err = err
	q.sp.Set("visitedCells", float64(st.VisitedCells))
	q.sp.Set("lpCalls", float64(st.LPCalls))
	q.sp.Set("witnessFastPaths", float64(s+e+c-q.wf))
	q.sp.FinishTo(q.tr)
}

// needsData enforces the strict-depth rule of the context variants.
func (ix *Index) needsData(k int) error {
	if k > ix.inner.MaxMaterializedLevel() && !ix.inner.HasFullData() {
		return ErrNeedsFullData
	}
	return nil
}

// TopKResult carries a ranked retrieval answer together with its traversal
// statistics.
type TopKResult struct {
	// Options are the k best dataset indices in rank order.
	Options []int
	Stats   QueryStats
}

// TopKContext is TopK with cancellation and strict-depth behavior; it also
// exports QueryStats, which the plain TopK does not.
//
// On cancellation it returns ctx's error together with a non-nil result
// carrying the partial QueryStats and the ranks resolved before the
// abandonment.
func (ix *Index) TopKContext(ctx context.Context, w []float64, k int) (*TopKResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	x, err := ix.reduce(w)
	if err != nil {
		return nil, err
	}
	q := ix.startQuerySpan(ctx, "query.topk")
	opts, st, err := ix.inner.TopKCtx(ctx, x, k)
	q.finish(exportStats(st), err)
	out := &TopKResult{Stats: exportStats(st)}
	for _, o := range opts {
		out.Options = append(out.Options, ix.origID(o))
	}
	return out, err
}

// KSPRContext is KSPR with cancellation and strict-depth behavior. On
// cancellation it returns ctx's error together with a non-nil result whose
// Stats carry the traversal work done before the abandonment (Regions is
// left empty).
func (ix *Index) KSPRContext(ctx context.Context, k, focal int) (*KSPRResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if focal < 0 {
		return nil, fmt.Errorf("tlevelindex: invalid focal option %d", focal)
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	fid := ix.filteredID(focal)
	if fid < 0 && k > ix.inner.MaxMaterializedLevel() {
		// The option may enter deeper levels; extending refreshes the pool.
		ix.inner.EnsureLevels(k)
		ix.idMap.Store(nil)
		fid = ix.filteredID(focal)
	}
	if fid < 0 {
		return &KSPRResult{}, nil
	}
	q := ix.startQuerySpan(ctx, "query.kspr")
	res, err := ix.inner.KSPRCtx(ctx, k, fid)
	q.finish(exportStats(res.Stats), err)
	out := &KSPRResult{Stats: exportStats(res.Stats)}
	if err != nil {
		return out, err
	}
	for _, id := range res.Cells {
		out.Regions = append(out.Regions, exportRegion(ix.inner.Region(id)))
	}
	return out, nil
}

// UTKContext is UTK with cancellation and strict-depth behavior. On
// cancellation it returns ctx's error together with a non-nil result whose
// Stats carry the traversal work done before the abandonment.
func (ix *Index) UTKContext(ctx context.Context, k int, lo, hi []float64) (*UTKResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if len(lo) != ix.inner.RDim() || len(hi) != ix.inner.RDim() {
		return nil, fmt.Errorf("tlevelindex: query box must have %d reduced coordinates", ix.inner.RDim())
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return nil, errors.New("tlevelindex: box lo exceeds hi")
		}
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	q := ix.startQuerySpan(ctx, "query.utk")
	res, err := ix.inner.UTKCtx(ctx, k, geom.NewBox(lo, hi))
	q.finish(exportStats(res.Stats), err)
	out := &UTKResult{Stats: exportStats(res.Stats)}
	if err != nil {
		return out, err
	}
	for _, o := range res.Options {
		out.Options = append(out.Options, ix.origID(o))
	}
	for _, p := range res.Partitions {
		part := UTKPartition{Region: exportRegion(ix.inner.Region(p.Cell))}
		for _, o := range p.TopK {
			part.TopK = append(part.TopK, ix.origID(o))
		}
		out.Partitions = append(out.Partitions, part)
	}
	return out, nil
}

// ORUContext is ORU with cancellation and strict-depth behavior. On
// cancellation it returns ctx's error together with a non-nil result
// carrying the partial QueryStats and the options collected so far.
func (ix *Index) ORUContext(ctx context.Context, k int, w []float64, m int) (*ORUResult, error) {
	if k < 1 || m < 1 {
		return nil, errors.New("tlevelindex: k and m must be >= 1")
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	x, err := ix.reduce(w)
	if err != nil {
		return nil, err
	}
	q := ix.startQuerySpan(ctx, "query.oru")
	res, err := ix.inner.ORUCtx(ctx, k, x, m)
	q.finish(exportStats(res.Stats), err)
	out := &ORUResult{Rho: res.Rho, Stats: exportStats(res.Stats)}
	for _, o := range res.Options {
		out.Options = append(out.Options, ix.origID(o))
	}
	return out, err
}

// MaxRankResult carries a best-achievable-rank answer together with its
// traversal statistics.
type MaxRankResult struct {
	// Rank is the option's best rank anywhere in preference space, or -1
	// when the option never ranks within τ.
	Rank  int
	Stats QueryStats
}

// MaxRankContext is MaxRank with cancellation; it also exports QueryStats,
// which the plain MaxRank does not. MaxRank never extends the index, so no
// strict-depth check applies. On cancellation it returns ctx's error
// together with a non-nil result carrying the partial QueryStats (Rank is
// meaningless then).
func (ix *Index) MaxRankContext(ctx context.Context, opt int) (*MaxRankResult, error) {
	if opt < 0 {
		return nil, fmt.Errorf("tlevelindex: invalid option %d", opt)
	}
	fid := ix.filteredID(opt)
	if fid < 0 {
		return &MaxRankResult{Rank: -1}, nil
	}
	q := ix.startQuerySpan(ctx, "query.maxrank")
	rank, st, err := ix.inner.MaxRankCtx(ctx, fid)
	q.finish(exportStats(st), err)
	return &MaxRankResult{Rank: rank, Stats: exportStats(st)}, err
}

// MonoRTopKResult carries a monochromatic reverse top-k answer together
// with its traversal statistics.
type MonoRTopKResult struct {
	// Intervals are the maximal segments of the first weight in which the
	// focal option ranks top-k (merged, ascending).
	Intervals []Interval
	Stats     QueryStats
}

// MonoRTopKContext is MonoRTopK with cancellation and strict-depth behavior;
// it also exports QueryStats, which the plain MonoRTopK does not. On
// cancellation it returns ctx's error together with a non-nil result whose
// Stats carry the traversal work done before the abandonment (Intervals is
// left empty).
func (ix *Index) MonoRTopKContext(ctx context.Context, k, focal int) (*MonoRTopKResult, error) {
	if ix.Dim() != 2 {
		return nil, errors.New("tlevelindex: MonoRTopK requires 2-attribute options")
	}
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if focal < 0 {
		return nil, fmt.Errorf("tlevelindex: invalid focal option %d", focal)
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	fid := ix.filteredID(focal)
	if fid < 0 && k > ix.inner.MaxMaterializedLevel() {
		ix.inner.EnsureLevels(k)
		ix.idMap.Store(nil)
		fid = ix.filteredID(focal)
	}
	if fid < 0 {
		return &MonoRTopKResult{}, nil
	}
	q := ix.startQuerySpan(ctx, "query.monortopk")
	segs, st, err := ix.inner.MonoRTopKCtx(ctx, k, fid)
	q.finish(exportStats(st), err)
	out := &MonoRTopKResult{Stats: exportStats(st)}
	if err != nil {
		return out, err
	}
	for _, s := range segs {
		out.Intervals = append(out.Intervals, Interval{Lo: s.Lo, Hi: s.Hi})
	}
	return out, nil
}

// MarketShareResult carries a preference-space market-share estimate
// together with the statistics of its underlying kSPR traversal.
type MarketShareResult struct {
	// Share is the fraction of preference space (by volume) in which the
	// focal option ranks top-k, in [0, 1].
	Share float64
	Stats QueryStats
}

// MarketShareContext is MarketShare with cancellation and strict-depth
// behavior; it also exports QueryStats, which the plain MarketShare does
// not. Cancellation is polled during the kSPR traversal and between the
// per-cell volume integrations; on abandonment it returns ctx's error
// together with a non-nil result whose Stats carry the work done so far
// (Share is meaningless then).
func (ix *Index) MarketShareContext(ctx context.Context, focal, k int) (*MarketShareResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if focal < 0 {
		return nil, fmt.Errorf("tlevelindex: invalid focal option %d", focal)
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	fid := ix.filteredID(focal)
	if fid < 0 && k > ix.inner.MaxMaterializedLevel() {
		ix.inner.EnsureLevels(k)
		ix.idMap.Store(nil)
		fid = ix.filteredID(focal)
	}
	if fid < 0 {
		return &MarketShareResult{}, nil
	}
	q := ix.startQuerySpan(ctx, "query.marketshare")
	res, err := ix.inner.KSPRCtx(ctx, k, fid)
	out := &MarketShareResult{Stats: exportStats(res.Stats)}
	if err != nil {
		q.finish(out.Stats, err)
		return out, err
	}
	rng := rand.New(rand.NewSource(1))
	total := 0.0
	for _, id := range res.Cells {
		if err := ctx.Err(); err != nil {
			q.finish(out.Stats, err)
			return out, err
		}
		total += ix.inner.Region(id).Volume(20000, rng.Float64)
	}
	share := total / geom.SimplexVolume(ix.inner.RDim())
	if share > 1 {
		share = 1 // Monte-Carlo noise can overshoot marginally
	}
	out.Share = share
	q.finish(out.Stats, nil)
	return out, nil
}

// ReverseTopKResult carries a bichromatic reverse top-k answer together with
// the statistics of its underlying kSPR traversal.
type ReverseTopKResult struct {
	// Users are the indices of the users whose top-k contains the focal
	// option, in input order.
	Users []int
	Stats QueryStats
}

// ReverseTopKContext is ReverseTopK with cancellation and strict-depth
// behavior; it also exports QueryStats, which the plain ReverseTopK does
// not. Cancellation is polled during the kSPR traversal and between user
// membership tests; on abandonment it returns ctx's error together with a
// non-nil result whose Stats carry the work done so far and whose Users
// hold the matches found up to that point (incomplete).
func (ix *Index) ReverseTopKContext(ctx context.Context, k, focal int, users [][]float64) (*ReverseTopKResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if focal < 0 {
		return nil, fmt.Errorf("tlevelindex: invalid focal option %d", focal)
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	// Validate the whole population up front: a malformed user is an input
	// error (like the plain variant's), never a partial result.
	xs := make([][]float64, len(users))
	for ui, w := range users {
		x, err := ix.reduce(w)
		if err != nil {
			return nil, fmt.Errorf("tlevelindex: user %d: %w", ui, err)
		}
		xs[ui] = x
	}
	fid := ix.filteredID(focal)
	if fid < 0 && k > ix.inner.MaxMaterializedLevel() {
		ix.inner.EnsureLevels(k)
		ix.idMap.Store(nil)
		fid = ix.filteredID(focal)
	}
	if fid < 0 {
		return &ReverseTopKResult{}, nil
	}
	q := ix.startQuerySpan(ctx, "query.reversetopk")
	res, err := ix.inner.KSPRCtx(ctx, k, fid)
	out := &ReverseTopKResult{Stats: exportStats(res.Stats)}
	if err != nil {
		q.finish(out.Stats, err)
		return out, err
	}
	regions := make([]*geom.Region, len(res.Cells))
	for i, id := range res.Cells {
		regions[i] = ix.inner.Region(id)
	}
	for ui, x := range xs {
		if err := ctx.Err(); err != nil {
			q.finish(out.Stats, err)
			return out, err
		}
		for _, r := range regions {
			if r.ContainsPoint(x, 1e-9) {
				out.Users = append(out.Users, ui)
				break
			}
		}
	}
	q.finish(out.Stats, nil)
	return out, nil
}

// WhyNotContext is WhyNot with cancellation and strict-depth behavior. On
// cancellation it returns ctx's error together with a non-nil result whose
// Stats carry the work done before the abandonment.
func (ix *Index) WhyNotContext(ctx context.Context, opt int, w []float64, k int) (*WhyNotResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	x, err := ix.reduce(w)
	if err != nil {
		return nil, err
	}
	fid := ix.filteredID(opt)
	if fid < 0 {
		return &WhyNotResult{Rank: -1, MinShift: -1}, nil
	}
	q := ix.startQuerySpan(ctx, "query.whynot")
	res, err := ix.inner.WhyNotCtx(ctx, fid, x, k)
	q.finish(exportStats(res.Stats), err)
	out := &WhyNotResult{Rank: res.RankAtW, InTopK: res.InTopK, MinShift: res.NearestDist,
		Stats: exportStats(res.Stats)}
	if res.NearestPoint != nil {
		out.SuggestedW = geom.Lift(res.NearestPoint)
	}
	return out, err
}
