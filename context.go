package tlevelindex

import (
	"context"
	"errors"
	"fmt"

	"tlevelindex/internal/geom"
)

// This file holds the context-aware query variants. Each one behaves like
// its plain counterpart with two differences:
//
//   - Cancellation: the traversal polls ctx between cell visits and
//     abandons the query with the context's error, so a slow region walk
//     cannot outlive its HTTP request or caller deadline.
//   - Strict depth: when k exceeds MaxMaterializedLevel and the index holds
//     no full dataset, the variant fails fast with ErrNeedsFullData instead
//     of extending best-effort over the filtered pool like the plain
//     methods do.
//
// Variants whose depth stays within the materialized levels are pure
// lookups and safe to call concurrently from many goroutines.

// needsData enforces the strict-depth rule of the context variants.
func (ix *Index) needsData(k int) error {
	if k > ix.inner.MaxMaterializedLevel() && !ix.inner.HasFullData() {
		return ErrNeedsFullData
	}
	return nil
}

// TopKResult carries a ranked retrieval answer together with its traversal
// statistics.
type TopKResult struct {
	// Options are the k best dataset indices in rank order.
	Options []int
	Stats   QueryStats
}

// TopKContext is TopK with cancellation and strict-depth behavior; it also
// exports QueryStats, which the plain TopK does not.
func (ix *Index) TopKContext(ctx context.Context, w []float64, k int) (*TopKResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	x, err := ix.reduce(w)
	if err != nil {
		return nil, err
	}
	opts, st, err := ix.inner.TopKCtx(ctx, x, k)
	if err != nil {
		return nil, err
	}
	out := &TopKResult{Stats: exportStats(st)}
	for _, o := range opts {
		out.Options = append(out.Options, ix.origID(o))
	}
	return out, nil
}

// KSPRContext is KSPR with cancellation and strict-depth behavior.
func (ix *Index) KSPRContext(ctx context.Context, k, focal int) (*KSPRResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if focal < 0 {
		return nil, fmt.Errorf("tlevelindex: invalid focal option %d", focal)
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	fid := ix.filteredID(focal)
	if fid < 0 && k > ix.inner.MaxMaterializedLevel() {
		// The option may enter deeper levels; extending refreshes the pool.
		ix.inner.EnsureLevels(k)
		ix.idMap.Store(nil)
		fid = ix.filteredID(focal)
	}
	if fid < 0 {
		return &KSPRResult{}, nil
	}
	res, err := ix.inner.KSPRCtx(ctx, k, fid)
	if err != nil {
		return nil, err
	}
	out := &KSPRResult{Stats: exportStats(res.Stats)}
	for _, id := range res.Cells {
		out.Regions = append(out.Regions, exportRegion(ix.inner.Region(id)))
	}
	return out, nil
}

// UTKContext is UTK with cancellation and strict-depth behavior.
func (ix *Index) UTKContext(ctx context.Context, k int, lo, hi []float64) (*UTKResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if len(lo) != ix.inner.RDim() || len(hi) != ix.inner.RDim() {
		return nil, fmt.Errorf("tlevelindex: query box must have %d reduced coordinates", ix.inner.RDim())
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return nil, errors.New("tlevelindex: box lo exceeds hi")
		}
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	res, err := ix.inner.UTKCtx(ctx, k, geom.NewBox(lo, hi))
	if err != nil {
		return nil, err
	}
	out := &UTKResult{Stats: exportStats(res.Stats)}
	for _, o := range res.Options {
		out.Options = append(out.Options, ix.origID(o))
	}
	for _, p := range res.Partitions {
		part := UTKPartition{Region: exportRegion(ix.inner.Region(p.Cell))}
		for _, o := range p.TopK {
			part.TopK = append(part.TopK, ix.origID(o))
		}
		out.Partitions = append(out.Partitions, part)
	}
	return out, nil
}

// ORUContext is ORU with cancellation and strict-depth behavior.
func (ix *Index) ORUContext(ctx context.Context, k int, w []float64, m int) (*ORUResult, error) {
	if k < 1 || m < 1 {
		return nil, errors.New("tlevelindex: k and m must be >= 1")
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	x, err := ix.reduce(w)
	if err != nil {
		return nil, err
	}
	res, err := ix.inner.ORUCtx(ctx, k, x, m)
	if err != nil {
		return nil, err
	}
	out := &ORUResult{Rho: res.Rho, Stats: exportStats(res.Stats)}
	for _, o := range res.Options {
		out.Options = append(out.Options, ix.origID(o))
	}
	return out, nil
}

// MaxRankResult carries a best-achievable-rank answer together with its
// traversal statistics.
type MaxRankResult struct {
	// Rank is the option's best rank anywhere in preference space, or -1
	// when the option never ranks within τ.
	Rank  int
	Stats QueryStats
}

// MaxRankContext is MaxRank with cancellation; it also exports QueryStats,
// which the plain MaxRank does not. MaxRank never extends the index, so no
// strict-depth check applies.
func (ix *Index) MaxRankContext(ctx context.Context, opt int) (*MaxRankResult, error) {
	if opt < 0 {
		return nil, fmt.Errorf("tlevelindex: invalid option %d", opt)
	}
	fid := ix.filteredID(opt)
	if fid < 0 {
		return &MaxRankResult{Rank: -1}, nil
	}
	rank, st, err := ix.inner.MaxRankCtx(ctx, fid)
	if err != nil {
		return nil, err
	}
	return &MaxRankResult{Rank: rank, Stats: exportStats(st)}, nil
}

// WhyNotContext is WhyNot with cancellation and strict-depth behavior.
func (ix *Index) WhyNotContext(ctx context.Context, opt int, w []float64, k int) (*WhyNotResult, error) {
	if k < 1 {
		return nil, errors.New("tlevelindex: k must be >= 1")
	}
	if err := ix.needsData(k); err != nil {
		return nil, err
	}
	x, err := ix.reduce(w)
	if err != nil {
		return nil, err
	}
	fid := ix.filteredID(opt)
	if fid < 0 {
		return &WhyNotResult{Rank: -1, MinShift: -1}, nil
	}
	res, err := ix.inner.WhyNotCtx(ctx, fid, x, k)
	if err != nil {
		return nil, err
	}
	out := &WhyNotResult{Rank: res.RankAtW, InTopK: res.InTopK, MinShift: res.NearestDist,
		Stats: exportStats(res.Stats)}
	if res.NearestPoint != nil {
		out.SuggestedW = geom.Lift(res.NearestPoint)
	}
	return out, nil
}
