package datagen

import "math"

// Normalize rescales every attribute column to [0, 1] with min-max
// normalization — the preprocessing step for importing raw datasets whose
// attributes live on arbitrary scales. Constant columns map to 0.5. The
// input is not modified.
func Normalize(data [][]float64) [][]float64 {
	if len(data) == 0 {
		return nil
	}
	d := len(data[0])
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j], hi[j] = math.Inf(1), math.Inf(-1)
	}
	for _, row := range data {
		for j, v := range row {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	out := make([][]float64, len(data))
	for i, row := range data {
		p := make([]float64, d)
		for j, v := range row {
			if hi[j] > lo[j] {
				p[j] = (v - lo[j]) / (hi[j] - lo[j])
			} else {
				p[j] = 0.5
			}
		}
		out[i] = p
	}
	return out
}

// InvertColumns flips the listed attribute columns as 1−x, converting
// lower-is-better attributes (price, expenses, turnovers) into the
// higher-is-better convention the index expects. Call after Normalize.
// The input is not modified.
func InvertColumns(data [][]float64, cols ...int) [][]float64 {
	flip := make(map[int]bool, len(cols))
	for _, c := range cols {
		flip[c] = true
	}
	out := make([][]float64, len(data))
	for i, row := range data {
		p := append([]float64(nil), row...)
		for j := range p {
			if flip[j] {
				p[j] = 1 - p[j]
			}
		}
		out[i] = p
	}
	return out
}
