// Package datagen generates the evaluation workloads of §7.1: the standard
// synthetic benchmark distributions for preference queries (independent,
// correlated, anti-correlated, following Börzsönyi et al.) and seeded
// synthetic stand-ins for the three real datasets (HOTEL, HOUSE, NBA) whose
// originals are behind commercial crawls. The stand-ins match the papers'
// cardinalities, dimensionalities, and correlation structure — the three
// factors the evaluated algorithms are sensitive to.
//
// All generators are deterministic for a given seed. Attributes are in
// [0, 1] with higher values better, the convention used throughout the
// repository.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution selects a synthetic attribute distribution.
type Distribution int

const (
	// IND draws every attribute independently and uniformly.
	IND Distribution = iota
	// COR draws positively correlated attributes clustered around a shared
	// per-option quality level.
	COR
	// ANTI draws anti-correlated attributes: good on some dimensions, bad
	// on others, with a near-constant attribute sum.
	ANTI
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case IND:
		return "IND"
	case COR:
		return "COR"
	case ANTI:
		return "ANTI"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution maps "IND"/"COR"/"ANTI" to a Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "IND", "ind":
		return IND, nil
	case "COR", "cor":
		return COR, nil
	case "ANTI", "anti":
		return ANTI, nil
	}
	return IND, fmt.Errorf("datagen: unknown distribution %q", s)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Generate produces n options with d attributes under the distribution.
func Generate(dist Distribution, n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		p := make([]float64, d)
		switch dist {
		case COR:
			base := clamp01(0.5 + 0.15*rng.NormFloat64())
			for j := range p {
				p[j] = clamp01(base + 0.05*rng.NormFloat64())
			}
		case ANTI:
			base := clamp01(0.5 + 0.05*rng.NormFloat64())
			jit := make([]float64, d)
			mean := 0.0
			for j := range jit {
				jit[j] = rng.Float64() - 0.5
				mean += jit[j]
			}
			mean /= float64(d)
			for j := range p {
				p[j] = clamp01(base + 0.9*(jit[j]-mean))
			}
		default: // IND
			for j := range p {
				p[j] = rng.Float64()
			}
		}
		out[i] = p
	}
	return out
}

// Hotel simulates the HOTEL dataset: 419K hotels with 4 attributes
// (stars, rooms, facilities, price-attractiveness), mixing budget,
// midscale, and luxury segments. Quality attributes correlate positively
// with each other and mildly negatively with price attractiveness.
func Hotel(seed int64) [][]float64 { return HotelSized(419000, seed) }

// HotelSized is Hotel at a custom cardinality (for tests and scaled-down
// benchmarks).
func HotelSized(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		// Segment: 0 budget, 1 midscale, 2 luxury.
		seg := rng.Intn(3)
		quality := [3]float64{0.25, 0.5, 0.8}[seg] + 0.12*rng.NormFloat64()
		stars := clamp01(quality + 0.05*rng.NormFloat64())
		rooms := clamp01(0.3 + 0.5*quality + 0.15*rng.NormFloat64())
		facilities := clamp01(quality + 0.1*rng.NormFloat64())
		// Pricier hotels are less price-attractive; noise keeps bargains.
		priceAttr := clamp01(1 - quality + 0.2*rng.NormFloat64())
		out[i] = []float64{stars, rooms, facilities, priceAttr}
	}
	return out
}

// House simulates the HOUSE dataset: 315K households with 6 expense
// attributes (gas, electricity, water, heating, insurance, property tax).
// Expenses share a heavy-tailed household-wealth factor, yielding strong
// positive correlation; attributes are stored as competitiveness scores
// (lower expense = higher score).
func House(seed int64) [][]float64 { return HouseSized(315000, seed) }

// HouseSized is House at a custom cardinality.
func HouseSized(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		wealth := math.Exp(0.6 * rng.NormFloat64()) // lognormal, median 1
		p := make([]float64, 6)
		for j := range p {
			expense := wealth * math.Exp(0.3*rng.NormFloat64())
			// Map expense to a [0,1] competitiveness score: cheap -> 1.
			p[j] = clamp01(1 / (1 + expense))
		}
		out[i] = p
	}
	return out
}

// NBA simulates the NBA dataset: 21.9K player-season rows with 8 metrics
// (games, rebounds, assists, steals, blocks, turnover-discipline, fouls-
// discipline, points). A latent skill factor drives most metrics; blocks
// and steals are zero-inflated like the real statistics.
func NBA(seed int64) [][]float64 { return NBASized(21900, seed) }

// NBASized is NBA at a custom cardinality.
func NBASized(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		skill := clamp01(rng.ExpFloat64() * 0.25) // most players modest, few stars
		games := clamp01(0.3 + 0.6*skill + 0.2*rng.NormFloat64())
		rebounds := clamp01(skill*0.9 + 0.15*rng.NormFloat64())
		assists := clamp01(skill*0.8 + 0.2*rng.NormFloat64())
		steals := zeroInflated(rng, skill, 0.3)
		blocks := zeroInflated(rng, skill, 0.45)
		toDiscipline := clamp01(1 - skill*0.4 + 0.2*rng.NormFloat64())
		foulDiscipline := clamp01(0.6 + 0.2*rng.NormFloat64())
		points := clamp01(skill + 0.1*rng.NormFloat64())
		out[i] = []float64{games, rebounds, assists, steals, blocks, toDiscipline, foulDiscipline, points}
	}
	return out
}

func zeroInflated(rng *rand.Rand, skill, zeroProb float64) float64 {
	if rng.Float64() < zeroProb*(1-skill) {
		return 0
	}
	return clamp01(skill*0.7 + 0.2*rng.NormFloat64())
}

// PrefDist selects a query-workload distribution: how the preference
// vectors (simplex points) of a query stream are drawn. Option data and
// preference vectors are distributed independently in practice — a uniform
// catalog still sees clustered user tastes — so workloads get their own
// axis instead of reusing Distribution.
type PrefDist int

const (
	// PrefUniform draws preference vectors uniformly from the simplex
	// (Dirichlet(1,...,1) via normalized exponentials).
	PrefUniform PrefDist = iota
	// PrefClustered draws from a small set of Gaussian bumps on the simplex:
	// a few dominant taste profiles with per-user jitter. This is the regime
	// batched query execution is built for — consecutive queries land in the
	// same or adjacent cells.
	PrefClustered
	// PrefCorrelated draws vectors whose coordinates co-move through a
	// shared latent factor: users weigh related attributes together, so mass
	// concentrates near a low-dimensional curve on the simplex.
	PrefCorrelated
)

// String implements fmt.Stringer.
func (p PrefDist) String() string {
	switch p {
	case PrefUniform:
		return "uniform"
	case PrefClustered:
		return "clustered"
	case PrefCorrelated:
		return "correlated"
	default:
		return fmt.Sprintf("PrefDist(%d)", int(p))
	}
}

// ParsePrefDist maps "uniform"/"clustered"/"correlated" to a PrefDist.
func ParsePrefDist(s string) (PrefDist, error) {
	switch s {
	case "uniform":
		return PrefUniform, nil
	case "clustered":
		return PrefClustered, nil
	case "correlated":
		return PrefCorrelated, nil
	}
	return PrefUniform, fmt.Errorf("datagen: unknown preference distribution %q", s)
}

// prefClusters is the number of taste profiles PrefClustered draws from,
// and prefSigma the per-coordinate jitter around a profile.
const (
	prefClusters = 4
	prefSigma    = 0.02
)

// Preferences produces n preference vectors of dimension d under the
// workload distribution. Every vector is on the open simplex: strictly
// positive coordinates summing to 1, directly usable as query weights.
func Preferences(dist PrefDist, n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	simplexPoint := func() []float64 {
		w := make([]float64, d)
		sum := 0.0
		for j := range w {
			w[j] = rng.ExpFloat64()
			sum += w[j]
		}
		for j := range w {
			w[j] /= sum
		}
		return w
	}
	// Clustered: centers are themselves uniform simplex draws, fixed by the
	// seed before any sample is taken.
	var centers [][]float64
	if dist == PrefClustered {
		centers = make([][]float64, prefClusters)
		for c := range centers {
			centers[c] = simplexPoint()
		}
	}
	out := make([][]float64, n)
	for i := range out {
		var w []float64
		switch dist {
		case PrefClustered:
			c := centers[rng.Intn(prefClusters)]
			w = make([]float64, d)
			sum := 0.0
			for j := range w {
				w[j] = c[j] + prefSigma*rng.NormFloat64()
				if w[j] < 1e-9 {
					w[j] = 1e-9 // clamp instead of rejecting: keeps n draws O(n)
				}
				sum += w[j]
			}
			for j := range w {
				w[j] /= sum
			}
		case PrefCorrelated:
			// One latent factor t tilts every coordinate through a fixed
			// per-dimension loading; softmax maps back to the simplex. Small
			// independent noise keeps vectors distinct along the curve.
			t := rng.NormFloat64()
			w = make([]float64, d)
			sum := 0.0
			for j := range w {
				loading := float64(2*j-d+1) / float64(d) // spread in [-1, 1)
				w[j] = math.Exp(0.8*loading*t + 0.1*rng.NormFloat64())
				sum += w[j]
			}
			for j := range w {
				w[j] /= sum
			}
		default: // PrefUniform
			w = simplexPoint()
		}
		out[i] = w
	}
	return out
}

// Real returns the simulated real dataset by name ("HOTEL", "HOUSE",
// "NBA"), scaled to n options (n <= 0 uses the paper's cardinality).
func Real(name string, n int, seed int64) ([][]float64, error) {
	switch name {
	case "HOTEL", "hotel":
		if n <= 0 {
			n = 419000
		}
		return HotelSized(n, seed), nil
	case "HOUSE", "house":
		if n <= 0 {
			n = 315000
		}
		return HouseSized(n, seed), nil
	case "NBA", "nba":
		if n <= 0 {
			n = 21900
		}
		return NBASized(n, seed), nil
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q", name)
}
