package datagen

import (
	"math"
	"reflect"
	"testing"
)

// pearson computes the correlation of two attribute columns.
func pearson(data [][]float64, a, b int) float64 {
	n := float64(len(data))
	var ma, mb float64
	for _, p := range data {
		ma += p[a]
		mb += p[b]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for _, p := range data {
		cov += (p[a] - ma) * (p[b] - mb)
		va += (p[a] - ma) * (p[a] - ma)
		vb += (p[b] - mb) * (p[b] - mb)
	}
	return cov / math.Sqrt(va*vb)
}

func inUnitBox(t *testing.T, data [][]float64, d int) {
	t.Helper()
	for i, p := range data {
		if len(p) != d {
			t.Fatalf("row %d has %d attrs, want %d", i, len(p), d)
		}
		for j, v := range p {
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Fatalf("row %d attr %d out of range: %v", i, j, v)
			}
		}
	}
}

func TestGenerateShapesAndDeterminism(t *testing.T) {
	for _, dist := range []Distribution{IND, COR, ANTI} {
		data := Generate(dist, 500, 4, 7)
		if len(data) != 500 {
			t.Fatalf("%v: got %d rows", dist, len(data))
		}
		inUnitBox(t, data, 4)
		again := Generate(dist, 500, 4, 7)
		if !reflect.DeepEqual(data, again) {
			t.Errorf("%v: not deterministic for fixed seed", dist)
		}
		other := Generate(dist, 500, 4, 8)
		if reflect.DeepEqual(data, other) {
			t.Errorf("%v: different seeds gave identical data", dist)
		}
	}
}

func TestCorrelationSigns(t *testing.T) {
	ind := Generate(IND, 4000, 3, 1)
	cor := Generate(COR, 4000, 3, 1)
	anti := Generate(ANTI, 4000, 3, 1)
	if r := pearson(cor, 0, 1); r < 0.5 {
		t.Errorf("COR pairwise correlation = %.3f, want strongly positive", r)
	}
	if r := pearson(anti, 0, 1); r > -0.2 {
		t.Errorf("ANTI pairwise correlation = %.3f, want negative", r)
	}
	if r := pearson(ind, 0, 1); math.Abs(r) > 0.1 {
		t.Errorf("IND pairwise correlation = %.3f, want near zero", r)
	}
}

func TestSkylineSizeOrdering(t *testing.T) {
	// ANTI must produce (much) larger skylines than COR — the driver of
	// Figure 11(a)'s cost ordering.
	skylineSize := func(data [][]float64) int {
		count := 0
		for i := range data {
			dominated := false
			for j := range data {
				if i == j {
					continue
				}
				dom, strict := true, false
				for k := range data[i] {
					if data[j][k] < data[i][k] {
						dom = false
						break
					}
					if data[j][k] > data[i][k] {
						strict = true
					}
				}
				if dom && strict {
					dominated = true
					break
				}
			}
			if !dominated {
				count++
			}
		}
		return count
	}
	cor := skylineSize(Generate(COR, 1500, 3, 2))
	ind := skylineSize(Generate(IND, 1500, 3, 2))
	anti := skylineSize(Generate(ANTI, 1500, 3, 2))
	if !(cor <= ind && ind <= anti) {
		t.Errorf("skyline sizes COR=%d IND=%d ANTI=%d, want COR <= IND <= ANTI", cor, ind, anti)
	}
	if anti <= 2*cor {
		t.Errorf("ANTI skyline (%d) should clearly exceed COR (%d)", anti, cor)
	}
}

func TestRealSimulators(t *testing.T) {
	hotel := HotelSized(2000, 3)
	inUnitBox(t, hotel, 4)
	house := HouseSized(2000, 3)
	inUnitBox(t, house, 6)
	nba := NBASized(2000, 3)
	inUnitBox(t, nba, 8)
	// Hotel: quality attributes positively correlated, price attractiveness
	// negatively correlated with stars.
	if r := pearson(hotel, 0, 2); r < 0.3 {
		t.Errorf("hotel stars/facilities correlation = %.3f", r)
	}
	if r := pearson(hotel, 0, 3); r > -0.2 {
		t.Errorf("hotel stars/price correlation = %.3f, want negative", r)
	}
	// House: expenses share the wealth factor.
	if r := pearson(house, 0, 5); r < 0.3 {
		t.Errorf("house expense correlation = %.3f", r)
	}
	// NBA: points and rebounds share skill; blocks are zero-inflated.
	if r := pearson(nba, 1, 7); r < 0.3 {
		t.Errorf("nba rebounds/points correlation = %.3f", r)
	}
	zeros := 0
	for _, p := range nba {
		if p[4] == 0 {
			zeros++
		}
	}
	if zeros < len(nba)/10 {
		t.Errorf("nba blocks zero-inflation too weak: %d/%d", zeros, len(nba))
	}
}

func TestRealByName(t *testing.T) {
	for _, name := range []string{"HOTEL", "HOUSE", "NBA"} {
		data, err := Real(name, 100, 1)
		if err != nil || len(data) != 100 {
			t.Errorf("Real(%q): %v len=%d", name, err, len(data))
		}
	}
	if _, err := Real("BOGUS", 10, 1); err == nil {
		t.Error("unknown dataset should error")
	}
	// Default cardinalities match the paper.
	if d, _ := Real("NBA", 0, 1); len(d) != 21900 {
		t.Errorf("NBA default cardinality = %d", len(d))
	}
}

func TestParseDistribution(t *testing.T) {
	for s, want := range map[string]Distribution{"IND": IND, "cor": COR, "ANTI": ANTI} {
		got, err := ParseDistribution(s)
		if err != nil || got != want {
			t.Errorf("ParseDistribution(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseDistribution("nope"); err == nil {
		t.Error("expected error for unknown distribution")
	}
	if IND.String() != "IND" || COR.String() != "COR" || ANTI.String() != "ANTI" {
		t.Error("String() mismatch")
	}
}

func TestNormalize(t *testing.T) {
	raw := [][]float64{
		{100, 5, 7},
		{200, 5, 3},
		{150, 5, 5},
	}
	norm := Normalize(raw)
	if norm[0][0] != 0 || norm[1][0] != 1 || norm[2][0] != 0.5 {
		t.Errorf("column 0 normalized wrong: %v", norm)
	}
	for i := range norm {
		if norm[i][1] != 0.5 {
			t.Errorf("constant column should map to 0.5: %v", norm[i])
		}
	}
	if norm[0][2] != 1 || norm[1][2] != 0 {
		t.Errorf("column 2 normalized wrong: %v", norm)
	}
	// Input untouched.
	if raw[0][0] != 100 {
		t.Error("Normalize mutated its input")
	}
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) should be nil")
	}
}

func TestInvertColumns(t *testing.T) {
	data := [][]float64{{0.2, 0.6}, {0.9, 0.1}}
	out := InvertColumns(data, 1)
	if out[0][0] != 0.2 || math.Abs(out[0][1]-0.4) > 1e-12 {
		t.Errorf("InvertColumns wrong: %v", out)
	}
	if data[0][1] != 0.6 {
		t.Error("InvertColumns mutated its input")
	}
}

func TestPreferences(t *testing.T) {
	for _, dist := range []PrefDist{PrefUniform, PrefClustered, PrefCorrelated} {
		for _, d := range []int{2, 3, 5} {
			ws := Preferences(dist, 200, d, 7)
			if len(ws) != 200 {
				t.Fatalf("%v d=%d: %d vectors", dist, d, len(ws))
			}
			for i, w := range ws {
				if len(w) != d {
					t.Fatalf("%v d=%d vector %d: len %d", dist, d, i, len(w))
				}
				sum := 0.0
				for _, v := range w {
					if v <= 0 || v >= 1 {
						t.Fatalf("%v d=%d vector %d: coordinate %v outside (0,1)", dist, d, i, v)
					}
					sum += v
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Fatalf("%v d=%d vector %d: sum %v", dist, d, i, sum)
				}
			}
		}
		// Deterministic per seed, distinct across seeds.
		a := Preferences(dist, 5, 3, 42)
		b := Preferences(dist, 5, 3, 42)
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					t.Fatalf("%v: same seed, different draws", dist)
				}
			}
		}
	}
	// Clustered vectors concentrate: mean nearest-center distance must be
	// far below what uniform draws exhibit.
	spread := func(ws [][]float64) float64 {
		total := 0.0
		for _, w := range ws {
			best := math.Inf(1)
			for _, c := range ws[:4] { // first draws approximate the centers
				d2 := 0.0
				for j := range w {
					d2 += (w[j] - c[j]) * (w[j] - c[j])
				}
				if d2 < best {
					best = d2
				}
			}
			total += math.Sqrt(best)
		}
		return total / float64(len(ws))
	}
	uni := spread(Preferences(PrefUniform, 300, 3, 9))
	clu := spread(Preferences(PrefClustered, 300, 3, 9))
	if clu > uni/3 {
		t.Fatalf("clustered spread %v not far below uniform %v", clu, uni)
	}
}

func TestParsePrefDist(t *testing.T) {
	for _, s := range []string{"uniform", "clustered", "correlated"} {
		p, err := ParsePrefDist(s)
		if err != nil || p.String() != s {
			t.Fatalf("ParsePrefDist(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParsePrefDist("zipf"); err == nil {
		t.Fatal("unknown distribution must error")
	}
}
