package datagen_test

import (
	"fmt"

	"tlevelindex/datagen"
)

func ExampleGenerate() {
	data := datagen.Generate(datagen.ANTI, 1000, 4, 42)
	fmt.Println(len(data), len(data[0]))
	// Output: 1000 4
}

func ExampleNormalize() {
	raw := [][]float64{
		{120000, 3}, // price, stars
		{80000, 5},
		{100000, 4},
	}
	norm := datagen.Normalize(raw)
	// Price is lower-is-better: flip it into the higher-is-better
	// convention before indexing.
	ready := datagen.InvertColumns(norm, 0)
	fmt.Printf("%.2f %.2f\n", ready[0][0], ready[0][1])
	fmt.Printf("%.2f %.2f\n", ready[1][0], ready[1][1])
	// Output:
	// 0.00 0.00
	// 1.00 1.00
}

func ExampleReal() {
	nba, _ := datagen.Real("NBA", 500, 7)
	fmt.Println(len(nba), len(nba[0]))
	// Output: 500 8
}
