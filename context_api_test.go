package tlevelindex

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"tlevelindex/datagen"
)

// TestMarketShareContextParity: the context-aware variant must return the
// exact MarketShare value (same deterministic Monte-Carlo seed) plus the
// traversal stats the plain call hides.
func TestMarketShareContextParity(t *testing.T) {
	data := datagen.Generate(datagen.IND, 40, 3, 11)
	ix, err := Build(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	for focal := 0; focal < 6; focal++ {
		want, err := ix.MarketShare(focal, 3)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.MarketShareContext(context.Background(), focal, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got.Share != want {
			t.Errorf("focal %d: ctx share %v != plain share %v", focal, got.Share, want)
		}
		if want > 0 && got.Stats.VisitedCells == 0 {
			t.Errorf("focal %d: stats missing from context variant", focal)
		}
		if math.IsNaN(got.Share) || got.Share < 0 || got.Share > 1 {
			t.Errorf("focal %d: share %v out of [0,1]", focal, got.Share)
		}
	}
}

func TestReverseTopKContextParity(t *testing.T) {
	data := datagen.Generate(datagen.IND, 40, 3, 12)
	ix, err := Build(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	users := [][]float64{
		{0.2, 0.3, 0.5},
		{0.6, 0.2, 0.2},
		{0.1, 0.1, 0.8},
		{1.0 / 3, 1.0 / 3, 1.0 / 3},
	}
	for focal := 0; focal < 6; focal++ {
		want, err := ix.ReverseTopK(2, focal, users)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.ReverseTopKContext(context.Background(), 2, focal, users)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Users, want) {
			t.Errorf("focal %d: ctx users %v != plain users %v", focal, got.Users, want)
		}
	}
	// Bad user weights stay a validation error, not a partial result.
	if _, err := ix.ReverseTopKContext(context.Background(), 2, 0, [][]float64{{0.5, 0.5}}); !errors.Is(err, ErrInvalidWeights) {
		t.Errorf("short user weights: %v", err)
	}
}

func TestMonoRTopKContextParity(t *testing.T) {
	data := datagen.Generate(datagen.IND, 30, 2, 13)
	ix, err := Build(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	for focal := 0; focal < 6; focal++ {
		want, err := ix.MonoRTopK(2, focal)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ix.MonoRTopKContext(context.Background(), 2, focal)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Intervals) != len(want) {
			t.Fatalf("focal %d: ctx intervals %v != plain %v", focal, got.Intervals, want)
		}
		for i := range want {
			if got.Intervals[i] != want[i] {
				t.Errorf("focal %d interval %d: %v != %v", focal, i, got.Intervals[i], want[i])
			}
		}
	}
	// Dimension guard matches the plain variant.
	d3 := datagen.Generate(datagen.IND, 20, 3, 14)
	ix3, err := Build(d3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix3.MonoRTopKContext(context.Background(), 2, 0); err == nil {
		t.Error("MonoRTopKContext accepted a 3-attribute index")
	}
}

// TestNewContextVariantsCancellation: pre-canceled contexts abort the three
// new variants with context.Canceled and a non-nil partial result carrying
// whatever stats accrued.
func TestNewContextVariantsCancellation(t *testing.T) {
	data := datagen.Generate(datagen.IND, 40, 3, 15)
	ix, err := Build(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Pick focals that are actually indexed so the traversal runs (a focal
	// outside the skyband returns an empty result before any ctx poll).
	focal := -1
	for f := 0; f < len(data); f++ {
		if r, err := ix.KSPR(3, f); err == nil && len(r.Regions) > 0 {
			focal = f
			break
		}
	}
	if focal < 0 {
		t.Fatal("no indexed focal found")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ms, err := ix.MarketShareContext(ctx, focal, 3)
	if err != context.Canceled {
		t.Errorf("MarketShareContext: %v", err)
	}
	if ms == nil {
		t.Error("MarketShareContext: nil partial result on cancellation")
	}
	rt, err := ix.ReverseTopKContext(ctx, 3, focal, [][]float64{{0.2, 0.3, 0.5}})
	if err != context.Canceled {
		t.Errorf("ReverseTopKContext: %v", err)
	}
	if rt == nil {
		t.Error("ReverseTopKContext: nil partial result on cancellation")
	}
	d2 := datagen.Generate(datagen.IND, 30, 2, 16)
	ix2, err := Build(d2, 3)
	if err != nil {
		t.Fatal(err)
	}
	focal2 := -1
	for f := 0; f < len(d2); f++ {
		if r, err := ix2.KSPR(2, f); err == nil && len(r.Regions) > 0 {
			focal2 = f
			break
		}
	}
	if focal2 < 0 {
		t.Fatal("no indexed 2-d focal found")
	}
	mr, err := ix2.MonoRTopKContext(ctx, 2, focal2)
	if err != context.Canceled {
		t.Errorf("MonoRTopKContext: %v", err)
	}
	if mr == nil {
		t.Error("MonoRTopKContext: nil partial result on cancellation")
	}
}

// TestNewContextVariantsSentinels pins validation and strict-depth errors.
func TestNewContextVariantsSentinels(t *testing.T) {
	data := datagen.Generate(datagen.IND, 30, 3, 17)
	nf, err := Build(data, 2, WithoutFullData())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := nf.MarketShareContext(ctx, 0, 5); !errors.Is(err, ErrNeedsFullData) {
		t.Errorf("deep MarketShareContext without data: %v", err)
	}
	if _, err := nf.ReverseTopKContext(ctx, 5, 0, nil); !errors.Is(err, ErrNeedsFullData) {
		t.Errorf("deep ReverseTopKContext without data: %v", err)
	}
	if _, err := nf.MarketShareContext(ctx, 0, 0); err == nil {
		t.Error("MarketShareContext accepted k = 0")
	}
	if _, err := nf.MarketShareContext(ctx, -1, 2); err == nil {
		t.Error("MarketShareContext accepted a negative focal")
	}
	if _, err := nf.ReverseTopKContext(ctx, 2, -1, nil); err == nil {
		t.Error("ReverseTopKContext accepted a negative focal")
	}
}
