package tlevelindex

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// randSimplexW returns a valid full weight vector of dimension d.
func randSimplexW(rng *rand.Rand, d int) []float64 {
	w := make([]float64, d)
	s := 0.0
	for i := range w {
		w[i] = rng.Float64()
		s += w[i]
	}
	for i := range w {
		w[i] /= s
	}
	return w
}

func batchAPIIndex(t *testing.T) *Index {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	data := make([][]float64, 150)
	for i := range data {
		data[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	ix, err := Build(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestTopKBatchAPIMatchesSingle: the public batch answer must be
// element-wise identical to TopKContext + LocateDepth per item, and
// malformed vectors must fail per-item without disturbing their neighbors.
func TestTopKBatchAPIMatchesSingle(t *testing.T) {
	ix := batchAPIIndex(t)
	rng := rand.New(rand.NewSource(22))
	ws := make([][]float64, 24)
	for i := range ws {
		ws[i] = randSimplexW(rng, ix.Dim())
	}
	ws[5] = []float64{0.9, 0.9, 0.9} // sum != 1: per-item failure
	ws[11] = nil                     // wrong dimension
	for _, k := range []int{1, 2, 4} {
		items, err := ix.TopKBatchContext(context.Background(), ws, k)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range ws {
			if i == 5 || i == 11 {
				if !errors.Is(items[i].Err, ErrInvalidWeights) {
					t.Fatalf("k=%d item %d: Err = %v, want ErrInvalidWeights", k, i, items[i].Err)
				}
				if items[i].Options != nil || items[i].Level != 0 {
					t.Fatalf("k=%d item %d: rejected item carries data: %+v", k, i, items[i])
				}
				continue
			}
			want, err := ix.TopKContext(context.Background(), w, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(items[i].Options, want.Options) || items[i].Stats != want.Stats {
				t.Fatalf("k=%d item %d: batch %+v != single %+v", k, i, items[i], want)
			}
			key, level, err := ix.LocateDepth(w, k)
			if err != nil {
				t.Fatal(err)
			}
			if items[i].Key != key || items[i].Level != level {
				t.Fatalf("k=%d item %d: key/level %v/%d != LocateDepth %v/%d",
					k, i, items[i].Key, items[i].Level, key, level)
			}
		}
	}
	// Plain variant: same answers through the non-strict path.
	plain, err := ix.TopKBatch(ws, 2)
	if err != nil {
		t.Fatal(err)
	}
	strict, _ := ix.TopKBatchContext(context.Background(), ws, 2)
	if !reflect.DeepEqual(plain, strict) {
		t.Fatal("TopKBatch disagrees with TopKBatchContext on a materialized depth")
	}
	if _, err := ix.TopKBatch(ws, 0); err == nil {
		t.Fatal("k=0 must fail the whole batch")
	}
}

func TestKSPRBatchAPIMatchesSingle(t *testing.T) {
	ix := batchAPIIndex(t)
	focals := append([]int{}, ix.LevelOptions(1)...)
	focals = append(focals, focals[0], 149, focals[0]) // duplicates + likely-filtered id
	out, err := ix.KSPRBatchContext(context.Background(), 3, focals)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]*KSPRResult{}
	for i, f := range focals {
		want, err := ix.KSPR(3, f)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out[i].Regions, want.Regions) || out[i].Stats != want.Stats {
			t.Fatalf("item %d (focal %d): batch != single", i, f)
		}
		if prev, ok := seen[f]; ok && len(out[i].Regions) > 0 && prev != out[i] {
			t.Fatalf("item %d: duplicate focal %d did not share its result pointer", i, f)
		}
		seen[f] = out[i]
	}
	if _, err := ix.KSPRBatchContext(context.Background(), 3, []int{-1}); err == nil {
		t.Fatal("negative focal must fail the whole batch")
	}
}

// TestKSPRBatchAPICancellation: a canceled KSPR batch surfaces ctx's error
// with every item non-nil — focals the walk never reached report empty
// results, not nil pointers.
func TestKSPRBatchAPICancellation(t *testing.T) {
	ix := batchAPIIndex(t)
	focals := append([]int{}, ix.LevelOptions(1)...)
	if len(focals) < 2 {
		t.Fatal("fixture has too few level-1 options")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := ix.KSPRBatchContext(ctx, 3, focals)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(out) != len(focals) {
		t.Fatalf("len(out) = %d, want %d", len(out), len(focals))
	}
	for i, r := range out {
		if r == nil {
			t.Fatalf("item %d: canceled batch returned a nil result", i)
		}
	}
}

// TestBatchNaNWeightsRejected: NaN entries defeat both of reduce's range
// checks (NaN comparisons are false), so they must be rejected explicitly —
// per item in the batch paths, as a plain error in the single paths.
func TestBatchNaNWeightsRejected(t *testing.T) {
	ix := batchAPIIndex(t)
	bad := []float64{math.NaN(), 0.5, 0.5}
	if _, err := ix.TopKContext(context.Background(), bad, 2); !errors.Is(err, ErrInvalidWeights) {
		t.Fatalf("TopKContext err = %v, want ErrInvalidWeights", err)
	}
	good := []float64{0.2, 0.3, 0.5}
	items, err := ix.TopKBatch([][]float64{bad, good}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(items[0].Err, ErrInvalidWeights) {
		t.Fatalf("item 0: Err = %v, want ErrInvalidWeights", items[0].Err)
	}
	if items[1].Err != nil || len(items[1].Options) == 0 {
		t.Fatalf("item 1: %+v, want a normal answer", items[1])
	}
	loc := ix.LocateBatch([][]float64{bad}, 2)
	if !errors.Is(loc[0].Err, ErrInvalidWeights) {
		t.Fatalf("LocateBatch Err = %v, want ErrInvalidWeights", loc[0].Err)
	}
}

func TestLocateBatchAPIMatchesSingle(t *testing.T) {
	ix := batchAPIIndex(t)
	rng := rand.New(rand.NewSource(23))
	ws := make([][]float64, 16)
	for i := range ws {
		ws[i] = randSimplexW(rng, ix.Dim())
	}
	ws[3] = []float64{2, -1, 0}
	for _, k := range []int{-1, 0, 1, 4, 9} { // 9 > τ exercises clamping; k < 1 the entry-cell key
		items := ix.LocateBatch(ws, k)
		for i, w := range ws {
			if i == 3 {
				if !errors.Is(items[i].Err, ErrInvalidWeights) {
					t.Fatalf("item 3: Err = %v, want ErrInvalidWeights", items[i].Err)
				}
				continue
			}
			key, level, err := ix.LocateDepth(w, k)
			if err != nil {
				t.Fatal(err)
			}
			if items[i].Key != key || items[i].Level != level {
				t.Fatalf("k=%d item %d: %v/%d != LocateDepth %v/%d",
					k, i, items[i].Key, items[i].Level, key, level)
			}
		}
	}
}

func TestLocateTopKAPIMatchesSingle(t *testing.T) {
	ix := batchAPIIndex(t)
	rng := rand.New(rand.NewSource(24))
	for i := 0; i < 20; i++ {
		w := randSimplexW(rng, ix.Dim())
		for _, k := range []int{1, 2, 4, 9} {
			key, level, res, err := ix.LocateTopK(context.Background(), w, k)
			if err != nil {
				t.Fatal(err)
			}
			wantKey, wantLevel, err := ix.LocateDepth(w, k)
			if err != nil {
				t.Fatal(err)
			}
			if key != wantKey || level != wantLevel {
				t.Fatalf("k=%d: key/level %v/%d != LocateDepth %v/%d", k, key, level, wantKey, wantLevel)
			}
			if k <= ix.MaxMaterializedLevel() {
				want, err := ix.TopKContext(context.Background(), w, k)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Options, want.Options) || res.Stats != want.Stats {
					t.Fatalf("k=%d: LocateTopK %+v != TopKContext %+v", k, res, want)
				}
			}
		}
	}
	if _, _, _, err := ix.LocateTopK(context.Background(), []float64{0.5}, 2); !errors.Is(err, ErrInvalidWeights) {
		t.Fatalf("invalid weights: err = %v", err)
	}
}

// TestBatchStrictDepth: the context variants refuse k beyond the
// materialized levels on an index without the full dataset, like every
// other *Context query.
func TestBatchStrictDepth(t *testing.T) {
	ix := buildHotels(t, WithoutFullData())
	ws := [][]float64{{0.18, 0.82}}
	if _, err := ix.TopKBatchContext(context.Background(), ws, ix.Tau()+1); !errors.Is(err, ErrNeedsFullData) {
		t.Fatalf("TopKBatchContext err = %v, want ErrNeedsFullData", err)
	}
	if _, err := ix.KSPRBatchContext(context.Background(), ix.Tau()+1, []int{0}); !errors.Is(err, ErrNeedsFullData) {
		t.Fatalf("KSPRBatchContext err = %v, want ErrNeedsFullData", err)
	}
}

// TestTopKBatchAPICancellation: a canceled batch surfaces ctx's error and
// per-item partial prefixes.
func TestTopKBatchAPICancellation(t *testing.T) {
	ix := batchAPIIndex(t)
	rng := rand.New(rand.NewSource(25))
	ws := make([][]float64, 12)
	for i := range ws {
		ws[i] = randSimplexW(rng, ix.Dim())
	}
	full, err := ix.TopKBatchContext(context.Background(), ws, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	part, err := ix.TopKBatchContext(ctx, ws, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := range ws {
		n := len(part[i].Options)
		if !reflect.DeepEqual(part[i].Options, full[i].Options[:n]) {
			t.Fatalf("item %d: partial %v is not a prefix of %v", i, part[i].Options, full[i].Options)
		}
		if part[i].Level != n {
			t.Fatalf("item %d: level %d != len(options) %d", i, part[i].Level, n)
		}
	}
}
