package tlevelindex

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"

	"tlevelindex/datagen"
)

// TestParallelBuildDeterminism verifies the central promise of the worker
// pool: the serialized index is byte-identical for every worker count, for
// every builder. The parallel phases only compute; cells and edges always
// materialize in the same sequential order.
func TestParallelBuildDeterminism(t *testing.T) {
	data := datagen.Generate(datagen.ANTI, 60, 3, 5)
	for _, alg := range []Algorithm{PBAPlus, PBA, IBA, IBAR, BSL} {
		var ref []byte
		for _, wk := range []int{1, 8} {
			ix, err := Build(data, 3, WithAlgorithm(alg), WithSeed(7), WithWorkers(wk))
			if err != nil {
				t.Fatalf("%v workers=%d: %v", alg, wk, err)
			}
			var buf bytes.Buffer
			if _, err := ix.WriteTo(&buf); err != nil {
				t.Fatalf("%v workers=%d: serialize: %v", alg, wk, err)
			}
			if wk == 1 {
				ref = buf.Bytes()
				continue
			}
			if !bytes.Equal(ref, buf.Bytes()) {
				t.Errorf("%v: serialized index differs between 1 and %d workers", alg, wk)
			}
		}
	}
}

// TestParallelExtensionDeterminism covers the on-demand extension path: the
// same deep query against copies of one index built with different worker
// counts must materialize identical deeper levels.
func TestParallelExtensionDeterminism(t *testing.T) {
	data := datagen.Generate(datagen.IND, 50, 3, 9)
	var ref []int
	for _, wk := range []int{1, 8} {
		ix, err := Build(data, 2, WithWorkers(wk))
		if err != nil {
			t.Fatal(err)
		}
		top, err := ix.TopK([]float64{0.3, 0.3, 0.4}, 5) // k > τ: extends
		if err != nil {
			t.Fatal(err)
		}
		if wk == 1 {
			ref = top
			continue
		}
		for i := range ref {
			if top[i] != ref[i] {
				t.Fatalf("workers=%d: extended top-5 = %v, want %v", wk, top, ref)
			}
		}
	}
}

// TestConcurrentReadersWithWriter exercises the documented concurrency
// contract under the race detector: queries within the materialized depth
// are safe from many goroutines at once, while mutations (Insert,
// ExtendTau, deep queries) take a write lock — the same discipline the
// serve package uses. The shared filteredID memo is the subtle part: every
// reader exercises it concurrently.
func TestConcurrentReadersWithWriter(t *testing.T) {
	data := datagen.Generate(datagen.IND, 40, 3, 11)
	ix, err := Build(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.RWMutex
	var wg sync.WaitGroup
	ctx := context.Background()
	readers := 8
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := []float64{0.2, 0.3, 0.5}
			for i := 0; i < 30; i++ {
				mu.RLock()
				k := 1 + (i % ix.MaxMaterializedLevel())
				switch g % 4 {
				case 0:
					if _, err := ix.TopKContext(ctx, w, k); err != nil {
						t.Error(err)
					}
				case 1:
					if _, err := ix.KSPRContext(ctx, k, i%40); err != nil {
						t.Error(err)
					}
				case 2:
					if _, err := ix.UTKContext(ctx, k, []float64{0.2, 0.2}, []float64{0.4, 0.4}); err != nil {
						t.Error(err)
					}
				case 3:
					if _, err := ix.MaxRankContext(ctx, i%40); err != nil {
						t.Error(err)
					}
				}
				mu.RUnlock()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			mu.Lock()
			if _, err := ix.Insert([]float64{0.9, 0.9, 0.9}); err != nil {
				t.Error(err)
			}
			mu.Unlock()
		}
		mu.Lock()
		if err := ix.ExtendTau(5); err != nil {
			t.Error(err)
		}
		mu.Unlock()
	}()
	wg.Wait()
	// The index must still answer consistently after the churn.
	top, err := ix.TopK([]float64{0.2, 0.3, 0.5}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("top-5 after concurrent churn = %v", top)
	}
}

// TestContextCancellation verifies that an already-canceled context aborts
// every context-aware query variant with the context's error.
func TestContextCancellation(t *testing.T) {
	data := datagen.Generate(datagen.IND, 40, 3, 3)
	ix, err := Build(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := []float64{0.2, 0.3, 0.5}
	if _, err := ix.KSPRContext(ctx, 3, 0); err != context.Canceled {
		t.Errorf("KSPRContext: %v", err)
	}
	if _, err := ix.UTKContext(ctx, 3, []float64{0.2, 0.2}, []float64{0.4, 0.4}); err != context.Canceled {
		t.Errorf("UTKContext: %v", err)
	}
	if _, err := ix.ORUContext(ctx, 2, w, 3); err != context.Canceled {
		t.Errorf("ORUContext: %v", err)
	}
	if _, err := ix.WhyNotContext(ctx, 0, w, 2); err != context.Canceled {
		t.Errorf("WhyNotContext: %v", err)
	}
	if _, err := ix.TopKContext(ctx, w, 3); err != context.Canceled {
		t.Errorf("TopKContext: %v", err)
	}
	if _, err := ix.MaxRankContext(ctx, 0); err != context.Canceled {
		t.Errorf("MaxRankContext: %v", err)
	}
}

// TestSentinelErrors pins the typed error contract of the redesigned API.
func TestSentinelErrors(t *testing.T) {
	data := datagen.Generate(datagen.IND, 30, 3, 7)
	ix, err := Build(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := ix.TopKContext(ctx, []float64{0.9, 0.3, 0.1}, 2); !errors.Is(err, ErrInvalidWeights) {
		t.Errorf("non-normalized weights: %v", err)
	}
	if _, err := ix.TopK([]float64{0.5, 0.5}, 2); !errors.Is(err, ErrInvalidWeights) {
		t.Errorf("short weights: %v", err)
	}
	// Deep query on an index without full data → ErrNeedsFullData.
	nf, err := Build(data, 2, WithoutFullData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nf.TopKContext(ctx, []float64{0.2, 0.3, 0.5}, 5); !errors.Is(err, ErrNeedsFullData) {
		t.Errorf("deep query without data: %v", err)
	}
	// Insert after extension → ErrExtended.
	if _, err := ix.TopK([]float64{0.2, 0.3, 0.5}, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Insert([]float64{0.8, 0.8, 0.8}); !errors.Is(err, ErrExtended) {
		t.Errorf("insert after extension: %v", err)
	}
}

// TestRegionFeasible covers the Region.Feasible helper on query output and
// on caller-tightened regions.
func TestRegionFeasible(t *testing.T) {
	ix := buildHotels(t)
	res, err := ix.KSPR(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) == 0 {
		t.Fatal("expected kSPR regions")
	}
	for i, r := range res.Regions {
		if !r.Feasible() {
			t.Errorf("query region %d reported infeasible", i)
		}
	}
	if !(Region{}).Feasible() {
		t.Error("empty region (whole simplex) reported infeasible")
	}
	// Two contradictory halfspaces: x <= 0.1 and x >= 0.9.
	bad := Region{Halfspaces: []Halfspace{
		{A: []float64{1}, B: 0.1},
		{A: []float64{-1}, B: -0.9},
	}}
	if bad.Feasible() {
		t.Error("contradictory region reported feasible")
	}
}
